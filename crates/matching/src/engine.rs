//! `MatchEngine` — an allocation-free, incrementally-updated counting core.
//!
//! The sanitization loop (crate `seqhide-core`) repeatedly asks two
//! questions about one `(S_h, T)` pair: *what is `δ(T[j])` for every `j`*,
//! and — after marking the chosen position — *what is it now*? The free
//! functions in [`delta`](crate::delta) answer the first question from
//! scratch in `O(|S_h|·nm)` time with `O(nm)` fresh allocations per call;
//! calling them once per mark makes every mark pay the full from-scratch
//! price.
//!
//! The engine instead **owns** the forward/backward ending-exactly-at
//! tables and the `δ` vector as reusable buffers, and repairs them
//! incrementally under [`MatchEngine::apply_mark`]:
//!
//! * Marking position `i` clears column `i` of the match-bit matrix.
//!   Forward cells `fwd[k][j]` only depend on columns `≤ j`, so only
//!   `j ≥ i` can change; backward cells `bwd[k][j]` only depend on columns
//!   `≥ j`, so only `j ≤ i` can change. The repair recomputes exactly those
//!   slices (and their running prefix/suffix sums), then refreshes the `δ`
//!   buffer from the standing tables: `δ(j) = Σ_k fwd[k][j] · bwd[k][j]`.
//! * No heap allocation happens on this path: every table, the `δ` vector,
//!   and the random-strategy candidate buffer are engine-owned and reused
//!   across marks *and* across sequences ([`MatchEngine::load`] resizes in
//!   place).
//!
//! **Max-window patterns are the documented exception.** The window
//! constraint couples an occurrence's two ends, so its count does not
//! factor into a forward and a backward part and there is no cheap local
//! repair. Patterns with `max_window` fall back to a *buffered full
//! recount* (the Lemma 5 per-end-position DP, run over the engine's
//! match-bit matrix with engine-owned scratch rows) — same asymptotic cost
//! as the from-scratch path, but still allocation-free after warm-up.
//!
//! All three match relations go through the same core: symbol equality
//! ([`MatchEngine`]), itemset inclusion ([`ItemsetMatchEngine`]), and
//! gap-constrained variants of either (gap constraints are resolved into
//! the per-pattern table recurrences). The relation is sampled once into a
//! match-bit matrix at [`MatchEngine::load`] time, which is what makes
//! masking uniform: a mark is just a cleared column, whatever the relation
//! was.
//!
//! The engine's `δ` values are **identical** to
//! [`delta_all`](crate::delta::delta_all) — the property suite
//! (`tests/prop_engine.rs`) asserts this after every mark across
//! unconstrained, gap-constrained, max-window and itemset patterns, in
//! both exact and saturating arithmetic.

use seqhide_num::Count;
use seqhide_obs::{self as obs, Counter, Phase};
use seqhide_types::{ItemsetSequence, Sequence, Symbol};

use crate::constraints::{ConstraintSet, Gap};
use crate::delta::argmax_delta;
use crate::itemset::ItemsetPattern;
use crate::pattern::SensitiveSet;

/// Work counters one engine has accumulated since it was built — plain
/// (non-atomic) tallies, so reading them is free and they track *this*
/// engine even when several run on different threads. The same events also
/// feed the global `seqhide-obs` sinks
/// ([`Counter::EngineCellRepairs`] / [`Counter::FallbackRecounts`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Incremental table repairs: one per non-window pattern per repaired
    /// column (a mark or an itemset element refresh).
    pub cell_repairs: u64,
    /// Buffered Lemma-5 recounts: one per `windowed_total` execution —
    /// loads, repairs and `δ`/item probes of max-window patterns, which
    /// have no incremental repair path (see `docs/ALGORITHMS.md` §5a).
    pub fallback_recounts: u64,
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.cell_repairs += rhs.cell_repairs;
        self.fallback_recounts += rhs.fallback_recounts;
    }
}

/// One pattern's shape with constraints resolved per arrow: the only facts
/// the DP recurrences need, independent of the match relation.
#[derive(Clone, Debug)]
struct PatternSpec {
    /// Pattern length `m`.
    m: usize,
    /// Per-arrow gap constraints, `m − 1` entries (broadcast resolved).
    gaps: Vec<Gap>,
    /// Max-window constraint, if any — forces the buffered fallback.
    window: Option<usize>,
}

impl PatternSpec {
    fn new(m: usize, cs: &ConstraintSet) -> Self {
        let arrows = m.saturating_sub(1);
        PatternSpec {
            m,
            gaps: (0..arrows).map(|k| cs.gap(k, arrows)).collect(),
            window: cs.max_window,
        }
    }
}

/// Per-pattern DP state over the current (masked) data sequence. All rows
/// are flattened row-major; `fpre`/`bsuf` carry one extra column for the
/// leading-zero / trailing-zero sentinel of the running sums.
#[derive(Clone, Debug)]
struct PatternTables<C: Count> {
    /// `m × n` match bits; masked columns are cleared.
    matched: Vec<bool>,
    /// `fwd[k][j]`: embeddings of the prefix `S[0..=k]` ending exactly at
    /// `j` (Lemma 3/4). Empty for window patterns.
    fwd: Vec<C>,
    /// `m × (n+1)` per-row prefix sums of `fwd` (leading zero).
    fpre: Vec<C>,
    /// `bwd[k][j]`: embeddings of the suffix `S[k..]` starting exactly at
    /// `j`. Empty for window patterns.
    bwd: Vec<C>,
    /// `m × (n+1)` per-row suffix sums of `bwd` (trailing zero).
    bsuf: Vec<C>,
    /// Current occurrence count of this pattern.
    total: C,
}

impl<C: Count> PatternTables<C> {
    fn empty() -> Self {
        PatternTables {
            matched: Vec::new(),
            fwd: Vec::new(),
            fpre: Vec::new(),
            bwd: Vec::new(),
            bsuf: Vec::new(),
            total: C::zero(),
        }
    }

    /// Resizes every buffer for a pattern of shape `spec` over `n` data
    /// elements and zeroes the DP state. Reuses capacity.
    fn reset(&mut self, spec: &PatternSpec, n: usize) {
        let m = spec.m;
        self.matched.clear();
        self.matched.resize(m * n, false);
        self.fwd.clear();
        self.fpre.clear();
        self.bwd.clear();
        self.bsuf.clear();
        if spec.window.is_none() {
            self.fwd.resize(m * n, C::zero());
            self.fpre.resize(m * (n + 1), C::zero());
            self.bwd.resize(m * n, C::zero());
            self.bsuf.resize(m * (n + 1), C::zero());
        }
        self.total = C::zero();
    }

    /// Recomputes `fwd[k][j]` and the prefix sums for all `j ≥ from`, every
    /// row. Rows ascend so row `k` reads row `k − 1`'s already-repaired
    /// prefix sums; cells at `j < from` cannot change because they only
    /// depend on columns `< from`.
    fn repair_fwd(&mut self, spec: &PatternSpec, n: usize, from: usize) {
        for k in 0..spec.m {
            let row = k * n;
            let prow = k * (n + 1);
            for j in from..n {
                let cell: C = if !self.matched[row + j] {
                    C::zero()
                } else if k == 0 {
                    C::one()
                } else {
                    // predecessor at l with gap j − l − 1 ∈ [min, max]
                    // ⇒ l ∈ [j − 1 − max, j − 1 − min]
                    let g = spec.gaps[k - 1];
                    if j < 1 + g.min {
                        C::zero()
                    } else {
                        let hi = j - 1 - g.min;
                        let lo = match g.max {
                            Some(max) => (j - 1).saturating_sub(max),
                            None => 0,
                        };
                        let base = (k - 1) * (n + 1);
                        // prefix sums are monotone: never saturates in
                        // exact arithmetic.
                        self.fpre[base + hi + 1].saturating_sub(&self.fpre[base + lo])
                    }
                };
                self.fpre[prow + j + 1] = self.fpre[prow + j].add(&cell);
                self.fwd[row + j] = cell;
            }
        }
        self.total = self.fpre[(spec.m - 1) * (n + 1) + n].clone();
    }

    /// Recomputes `bwd[k][j]` and the suffix sums for all `j ≤ upto`, every
    /// row. Rows descend so row `k` reads row `k + 1`'s already-repaired
    /// suffix sums; cells at `j > upto` cannot change because they only
    /// depend on columns `> upto`.
    fn repair_bwd(&mut self, spec: &PatternSpec, n: usize, upto: usize) {
        for k in (0..spec.m).rev() {
            let row = k * n;
            let srow = k * (n + 1);
            for j in (0..=upto).rev() {
                let cell: C = if !self.matched[row + j] {
                    C::zero()
                } else if k == spec.m - 1 {
                    C::one()
                } else {
                    // successor at l with gap l − j − 1 ∈ [min, max]
                    // ⇒ l ∈ [j + 1 + min, j + 1 + max]
                    let g = spec.gaps[k];
                    let lo = j + 1 + g.min;
                    if lo >= n {
                        C::zero()
                    } else {
                        let hi = match g.max {
                            Some(max) => (j + 1 + max).min(n - 1),
                            None => n - 1,
                        };
                        let base = (k + 1) * (n + 1);
                        self.bsuf[base + lo].saturating_sub(&self.bsuf[base + hi + 1])
                    }
                };
                // row k's suffix sum is safe to update in the same pass:
                // cells read row k + 1's sums, never row k's
                self.bsuf[srow + j] = self.bsuf[srow + j + 1].add(&cell);
                self.bwd[row + j] = cell;
            }
        }
    }
}

/// Engine-owned scratch rows for the max-window fallback DP.
#[derive(Clone, Debug)]
struct WindowScratch<C: Count> {
    prev: Vec<C>,
    cur: Vec<C>,
    pre: Vec<C>,
}

impl<C: Count> WindowScratch<C> {
    fn new() -> Self {
        WindowScratch {
            prev: Vec::new(),
            cur: Vec::new(),
            pre: Vec::new(),
        }
    }
}

/// Windowed occurrence count (Lemma 5) over an abstract bit relation
/// `bit(k, col)`, using caller-owned scratch rows — the buffered full
/// recount that window patterns fall back to.
fn windowed_total<C: Count>(
    spec: &PatternSpec,
    n: usize,
    bit: impl Fn(usize, usize) -> bool,
    scratch: &mut WindowScratch<C>,
) -> C {
    let m = spec.m;
    let ws = spec
        .window
        .expect("windowed_total requires a max-window pattern");
    let mut total = C::zero();
    for j in 0..n {
        if !bit(m - 1, j) {
            continue;
        }
        let lo = (j + 1).saturating_sub(ws);
        let len = j - lo + 1;
        if len < m {
            continue;
        }
        // Per-end-position slice DP over columns [lo, j], identical to the
        // ending-at table restricted to the slice.
        for k in 0..m {
            scratch.cur.clear();
            if k == 0 {
                for jj in 0..len {
                    scratch
                        .cur
                        .push(if bit(0, lo + jj) { C::one() } else { C::zero() });
                }
            } else {
                scratch.pre.clear();
                scratch.pre.push(C::zero());
                for l in 0..len {
                    let next = scratch.pre[l].add(&scratch.prev[l]);
                    scratch.pre.push(next);
                }
                let g = spec.gaps[k - 1];
                for jj in 0..len {
                    let cell = if !bit(k, lo + jj) || jj < 1 + g.min {
                        C::zero()
                    } else {
                        let hi = jj - 1 - g.min;
                        let lo2 = match g.max {
                            Some(max) => (jj - 1).saturating_sub(max),
                            None => 0,
                        };
                        scratch.pre[hi + 1].saturating_sub(&scratch.pre[lo2])
                    };
                    scratch.cur.push(cell);
                }
            }
            std::mem::swap(&mut scratch.prev, &mut scratch.cur);
        }
        total.add_assign(&scratch.prev[len - 1]);
    }
    total
}

/// The relation-agnostic engine core shared by [`MatchEngine`] and
/// [`ItemsetMatchEngine`]: pattern shapes, per-pattern DP tables, the `δ`
/// buffer, and the candidate buffer.
#[derive(Clone, Debug)]
struct EngineCore<C: Count> {
    specs: Vec<PatternSpec>,
    tables: Vec<PatternTables<C>>,
    n: usize,
    /// Positions masked via [`EngineCore::mask_column`] on the current load.
    masked: Vec<bool>,
    delta: Vec<C>,
    candidates: Vec<usize>,
    scratch: WindowScratch<C>,
    stats: EngineStats,
}

impl<C: Count> EngineCore<C> {
    fn new(specs: Vec<PatternSpec>) -> Self {
        let tables = specs.iter().map(|_| PatternTables::empty()).collect();
        EngineCore {
            specs,
            tables,
            n: 0,
            masked: Vec::new(),
            delta: Vec::new(),
            candidates: Vec::new(),
            scratch: WindowScratch::new(),
            stats: EngineStats::default(),
        }
    }

    /// Points the engine at a new data sequence of `n` elements, sampling
    /// the match relation `rel(pattern, k, j)` into the bit matrices and
    /// rebuilding every table. Reuses all buffers.
    fn load_with(&mut self, n: usize, rel: impl Fn(usize, usize, usize) -> bool) {
        let _span = obs::span(Phase::EngineLoad);
        self.n = n;
        self.masked.clear();
        self.masked.resize(n, false);
        for (p, (spec, tab)) in self.specs.iter().zip(self.tables.iter_mut()).enumerate() {
            tab.reset(spec, n);
            for k in 0..spec.m {
                for j in 0..n {
                    tab.matched[k * n + j] = rel(p, k, j);
                }
            }
            if spec.window.is_some() {
                self.stats.fallback_recounts += 1;
                obs::counter_add(Counter::FallbackRecounts, 1);
                let _fs = obs::span(Phase::FallbackRecount);
                let matched = &tab.matched;
                tab.total =
                    windowed_total(spec, n, |k, col| matched[k * n + col], &mut self.scratch);
            } else if n > 0 {
                tab.repair_fwd(spec, n, 0);
                tab.repair_bwd(spec, n, n - 1);
            }
        }
        self.recompute_delta();
    }

    /// Masks column `i` (a mark: the position stops matching everything)
    /// and repairs the affected table slices.
    fn mask_column(&mut self, i: usize) {
        assert!(
            i < self.n,
            "mask position {i} out of bounds for n = {}",
            self.n
        );
        self.masked[i] = true;
        let _span = obs::span(Phase::EngineRepair);
        let n = self.n;
        let mut repairs = 0u64;
        for (spec, tab) in self.specs.iter().zip(self.tables.iter_mut()) {
            for k in 0..spec.m {
                tab.matched[k * n + i] = false;
            }
            if spec.window.is_some() {
                self.stats.fallback_recounts += 1;
                obs::counter_add(Counter::FallbackRecounts, 1);
                let _fs = obs::span(Phase::FallbackRecount);
                let matched = &tab.matched;
                tab.total =
                    windowed_total(spec, n, |k, col| matched[k * n + col], &mut self.scratch);
            } else {
                repairs += 1;
                tab.repair_fwd(spec, n, i);
                tab.repair_bwd(spec, n, i);
            }
        }
        self.stats.cell_repairs += repairs;
        obs::counter_add(Counter::EngineCellRepairs, repairs);
        self.recompute_delta();
    }

    /// Re-samples column `i`'s match bits from `rel(pattern, k)` — the
    /// itemset item-marking case, where a column's relation *changes*
    /// rather than dies — and repairs the affected table slices. Masked
    /// columns stay dead.
    fn refresh_column_with(&mut self, i: usize, rel: impl Fn(usize, usize) -> bool) {
        assert!(
            i < self.n,
            "refresh position {i} out of bounds for n = {}",
            self.n
        );
        let _span = obs::span(Phase::EngineRepair);
        let n = self.n;
        let dead = self.masked[i];
        let mut repairs = 0u64;
        for (p, (spec, tab)) in self.specs.iter().zip(self.tables.iter_mut()).enumerate() {
            for k in 0..spec.m {
                tab.matched[k * n + i] = !dead && rel(p, k);
            }
            if spec.window.is_some() {
                self.stats.fallback_recounts += 1;
                obs::counter_add(Counter::FallbackRecounts, 1);
                let _fs = obs::span(Phase::FallbackRecount);
                let matched = &tab.matched;
                tab.total =
                    windowed_total(spec, n, |k, col| matched[k * n + col], &mut self.scratch);
            } else {
                repairs += 1;
                tab.repair_fwd(spec, n, i);
                tab.repair_bwd(spec, n, i);
            }
        }
        self.stats.cell_repairs += repairs;
        obs::counter_add(Counter::EngineCellRepairs, repairs);
        self.recompute_delta();
    }

    /// How many occurrences would disappear if column `j`'s match bits were
    /// replaced by `rel(pattern, k)` — evaluated from the standing tables
    /// in `O(|S_h|·m)` for gap patterns (an occurrence passes through `j`
    /// at exactly one `k`, so the dying sets are disjoint across `k`),
    /// buffered recount for window patterns.
    fn column_delta_if(&mut self, j: usize, rel: impl Fn(usize, usize) -> bool) -> C {
        let n = self.n;
        let mut lost = C::zero();
        for (p, (spec, tab)) in self.specs.iter().zip(self.tables.iter_mut()).enumerate() {
            if spec.window.is_some() {
                self.stats.fallback_recounts += 1;
                obs::counter_add(Counter::FallbackRecounts, 1);
                let _fs = obs::span(Phase::FallbackRecount);
                let matched = &tab.matched;
                let reduced = windowed_total(
                    spec,
                    n,
                    |k, col| {
                        if col == j {
                            rel(p, k)
                        } else {
                            matched[k * n + col]
                        }
                    },
                    &mut self.scratch,
                );
                lost.add_assign(&tab.total.saturating_sub(&reduced));
            } else {
                for k in 0..spec.m {
                    let idx = k * n + j;
                    if tab.matched[idx] && !rel(p, k) {
                        let f = &tab.fwd[idx];
                        if f.is_zero() {
                            continue;
                        }
                        let b = &tab.bwd[idx];
                        if b.is_zero() {
                            continue;
                        }
                        lost.add_assign(&f.mul(b));
                    }
                }
            }
        }
        lost
    }

    /// Refreshes the `δ` buffer from the standing tables.
    fn recompute_delta(&mut self) {
        let n = self.n;
        if self.delta.len() == n {
            // overwrite in place: cheaper than clear + resize for exact
            // counters, which would drop and reallocate their digits
            for d in self.delta.iter_mut() {
                *d = C::zero();
            }
        } else {
            self.delta.clear();
            self.delta.resize(n, C::zero());
        }
        for (spec, tab) in self.specs.iter().zip(self.tables.iter_mut()) {
            if spec.window.is_some() {
                if tab.total.is_zero() {
                    continue;
                }
                let _fs = obs::span(Phase::FallbackRecount);
                let mut probes = 0u64;
                for j in 0..n {
                    if self.masked[j] {
                        continue;
                    }
                    probes += 1;
                    let matched = &tab.matched;
                    let reduced = windowed_total(
                        spec,
                        n,
                        |k, col| col != j && matched[k * n + col],
                        &mut self.scratch,
                    );
                    let d = tab.total.saturating_sub(&reduced);
                    if !d.is_zero() {
                        self.delta[j].add_assign(&d);
                    }
                }
                self.stats.fallback_recounts += probes;
                obs::counter_add(Counter::FallbackRecounts, probes);
            } else {
                if tab.total.is_zero() {
                    // no full embedding survives ⇒ every fwd·bwd product
                    // is zero
                    continue;
                }
                // row-major sweep: fwd, bwd and δ are walked contiguously.
                // Each δ[j] still accumulates its k-contributions in
                // ascending k order, so saturating arithmetic behaves
                // exactly as in the column-major formulation.
                for k in 0..spec.m {
                    let row = k * n;
                    let fwd = &tab.fwd[row..row + n];
                    let bwd = &tab.bwd[row..row + n];
                    for (j, out) in self.delta.iter_mut().enumerate() {
                        let f = &fwd[j];
                        if f.is_zero() {
                            continue;
                        }
                        let b = &bwd[j];
                        if b.is_zero() {
                            continue;
                        }
                        out.add_assign(&f.mul(b));
                    }
                }
            }
        }
    }

    fn total(&self) -> C {
        let mut t = C::zero();
        for tab in &self.tables {
            t.add_assign(&tab.total);
        }
        t
    }

    fn candidates(&mut self) -> &[usize] {
        self.candidates.clear();
        for (i, d) in self.delta.iter().enumerate() {
            if !d.is_zero() {
                self.candidates.push(i);
            }
        }
        &self.candidates
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// The incrementally-updated counting engine for plain (symbol-matched)
/// sequences. See the [module docs](self) for the design.
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::{delta_all, engine::MatchEngine, SensitiveSet};
/// let mut sigma = Alphabet::new();
/// let s = Sequence::parse("a b c", &mut sigma);
/// let mut t = Sequence::parse("a a b c c b a e", &mut sigma);
/// let sh = SensitiveSet::new(vec![s]);
///
/// let mut engine = MatchEngine::<u64>::new(&sh);
/// engine.load(&t);
/// assert_eq!(engine.delta(), &[2, 2, 4, 2, 2, 0, 0, 0]); // paper Example 2
/// assert_eq!(engine.argmax(), Some(2));
///
/// t.mark(2);
/// engine.apply_mark(2); // incremental repair, no allocation
/// assert_eq!(engine.delta(), delta_all::<u64>(&sh, &t).as_slice());
/// assert!(engine.total() == 0);
/// ```
#[derive(Clone, Debug)]
pub struct MatchEngine<C: Count> {
    sh: SensitiveSet,
    core: EngineCore<C>,
}

impl<C: Count> MatchEngine<C> {
    /// Builds an engine for the sensitive set `sh`. The engine is reusable
    /// across sequences: call [`MatchEngine::load`] per sequence.
    pub fn new(sh: &SensitiveSet) -> Self {
        let specs = sh
            .iter()
            .map(|p| PatternSpec::new(p.len(), p.constraints()))
            .collect();
        MatchEngine {
            sh: sh.clone(),
            core: EngineCore::new(specs),
        }
    }

    /// Points the engine at `t`, rebuilding all tables in the reused
    /// buffers. Marks already present in `t` match nothing, as always.
    pub fn load(&mut self, t: &Sequence) {
        let sh = &self.sh;
        self.core
            .load_with(t.len(), |p, k, j| sh.patterns()[p].seq()[k].matches(t[j]));
    }

    /// Records that position `i` of the loaded sequence has been marked and
    /// incrementally repairs the tables and `δ`. The caller is responsible
    /// for marking the sequence itself (the engine holds no reference to
    /// it).
    pub fn apply_mark(&mut self, i: usize) {
        self.core.mask_column(i);
    }

    /// `δ(T[j])` for every position, identical to
    /// [`delta_all`](crate::delta::delta_all) on the current state.
    pub fn delta(&self) -> &[C] {
        &self.core.delta
    }

    /// The largest-`δ` position (ties to the smallest index), or `None`
    /// when no occurrence remains.
    pub fn argmax(&self) -> Option<usize> {
        argmax_delta(&self.core.delta)
    }

    /// Total residual occurrence count across all patterns.
    pub fn total(&self) -> C {
        self.core.total()
    }

    /// Positions with `δ > 0` in ascending order — the random strategy's
    /// "reasonable choices" — in an engine-owned reusable buffer.
    pub fn candidates(&mut self) -> &[usize] {
        self.core.candidates()
    }

    /// Work counters accumulated since the engine was built (across all
    /// loaded sequences). See [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        self.core.stats()
    }

    /// The sensitive set this engine was built for.
    pub fn sensitive_set(&self) -> &SensitiveSet {
        &self.sh
    }
}

/// The same engine over itemset sequences (§7.1): pattern elements match
/// data elements by set inclusion. Element-level masking
/// ([`ItemsetMatchEngine::apply_mask`]) and item-level marking
/// ([`ItemsetMatchEngine::refresh_element`]) both reduce to column
/// operations on the shared core.
#[derive(Clone, Debug)]
pub struct ItemsetMatchEngine<C: Count> {
    patterns: Vec<ItemsetPattern>,
    core: EngineCore<C>,
}

impl<C: Count> ItemsetMatchEngine<C> {
    /// Builds an engine for a set of itemset patterns.
    pub fn new(patterns: &[ItemsetPattern]) -> Self {
        let specs = patterns
            .iter()
            .map(|p| PatternSpec::new(p.len(), p.constraints()))
            .collect();
        ItemsetMatchEngine {
            patterns: patterns.to_vec(),
            core: EngineCore::new(specs),
        }
    }

    /// Points the engine at itemset sequence `t`.
    pub fn load(&mut self, t: &ItemsetSequence) {
        let pats = &self.patterns;
        let te = t.elements();
        self.core.load_with(te.len(), |p, k, j| {
            pats[p].elements().elements()[k].included_in(&te[j])
        });
    }

    /// Masks element `i` entirely (it stops matching every pattern
    /// element).
    pub fn apply_mask(&mut self, i: usize) {
        self.core.mask_column(i);
    }

    /// Re-samples element `elem`'s inclusion bits from the current state of
    /// `t` — call after marking items inside `t.elements_mut()[elem]`.
    pub fn refresh_element(&mut self, t: &ItemsetSequence, elem: usize) {
        let pats = &self.patterns;
        let te = t.elements();
        self.core.refresh_column_with(elem, |p, k| {
            pats[p].elements().elements()[k].included_in(&te[elem])
        });
    }

    /// Item-level `δ`: occurrences lost if `item` inside element `elem` of
    /// `t` were marked (inclusion must then hold without `item`). Evaluated
    /// from the standing tables without mutating them.
    pub fn item_delta(&mut self, t: &ItemsetSequence, elem: usize, item: Symbol) -> C {
        let pats = &self.patterns;
        let te = t.elements();
        self.core.column_delta_if(elem, |p, k| {
            pats[p].elements().elements()[k]
                .live_items()
                .all(|s| s != item && te[elem].contains(s))
        })
    }

    /// Element-level `δ` for every position, identical to
    /// [`delta_elements_itemset`](crate::itemset::delta_elements_itemset)
    /// in exact arithmetic.
    pub fn delta(&self) -> &[C] {
        &self.core.delta
    }

    /// The largest-`δ` element (ties to the smallest index).
    pub fn argmax(&self) -> Option<usize> {
        argmax_delta(&self.core.delta)
    }

    /// Total residual occurrence count across all patterns.
    pub fn total(&self) -> C {
        self.core.total()
    }

    /// Elements with `δ > 0` in ascending order, in a reusable buffer.
    pub fn candidates(&mut self) -> &[usize] {
        self.core.candidates()
    }

    /// Work counters accumulated since the engine was built (across all
    /// loaded sequences). See [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        self.core.stats()
    }

    /// The patterns this engine was built for.
    pub fn patterns(&self) -> &[ItemsetPattern] {
        &self.patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintSet, Gap};
    use crate::delta::delta_all;
    use crate::itemset::{delta_elements_itemset, delta_item_itemset, matching_size_itemset};
    use crate::pattern::SensitivePattern;
    use seqhide_num::{BigCount, Sat64};
    use seqhide_types::Alphabet;

    fn seqs(s: &str, t: &str) -> (Sequence, Sequence) {
        let mut sigma = Alphabet::new();
        (
            Sequence::parse(s, &mut sigma),
            Sequence::parse(t, &mut sigma),
        )
    }

    /// Marks greedily via the engine and checks δ against the from-scratch
    /// path after every mark.
    fn assert_engine_tracks_scratch<C: Count>(sh: &SensitiveSet, t: &Sequence) {
        let mut t = t.clone();
        let mut engine = MatchEngine::<C>::new(sh);
        engine.load(&t);
        loop {
            let scratch = delta_all::<C>(sh, &t);
            assert_eq!(engine.delta(), scratch.as_slice(), "δ diverged on {t:?}");
            let Some(pos) = engine.argmax() else { break };
            t.mark(pos);
            engine.apply_mark(pos);
        }
        assert!(engine.total().is_zero());
    }

    #[test]
    fn paper_example2_and_full_sanitization() {
        let (s, t) = seqs("a b c", "a a b c c b a e");
        let sh = SensitiveSet::new(vec![s]);
        assert_engine_tracks_scratch::<u64>(&sh, &t);
        assert_engine_tracks_scratch::<Sat64>(&sh, &t);
        assert_engine_tracks_scratch::<BigCount>(&sh, &t);
    }

    #[test]
    fn gap_constrained_engine_tracks_scratch() {
        let (s, t) = seqs("a b", "a a x b x b a b");
        let p = SensitivePattern::new(s, ConstraintSet::uniform_gap(Gap::bounded(1, 3))).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p]);
        assert_engine_tracks_scratch::<u64>(&sh, &t);
    }

    #[test]
    fn window_fallback_tracks_scratch() {
        let (s, t) = seqs("a b", "a x b a b a a b");
        let p = SensitivePattern::new(s, ConstraintSet::with_max_window(3)).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p]);
        assert_engine_tracks_scratch::<u64>(&sh, &t);
        assert_engine_tracks_scratch::<Sat64>(&sh, &t);
    }

    #[test]
    fn mixed_pattern_set() {
        let mut sigma = Alphabet::new();
        let s1 = Sequence::parse("a b", &mut sigma);
        let s2 = Sequence::parse("b c", &mut sigma);
        let t = Sequence::parse("a b c a b c b", &mut sigma);
        let p1 = SensitivePattern::unconstrained(s1).unwrap();
        let p2 = SensitivePattern::new(s2, ConstraintSet::with_max_window(2)).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p1, p2]);
        assert_engine_tracks_scratch::<u64>(&sh, &t);
    }

    #[test]
    fn engine_reuse_across_sequences() {
        let (s, t1) = seqs("a b", "a b a b");
        let sh = SensitiveSet::new(vec![s]);
        let mut engine = MatchEngine::<u64>::new(&sh);
        engine.load(&t1);
        assert_eq!(engine.total(), 3);
        // shorter sequence next: buffers shrink logically, no stale state
        let t2 = Sequence::from_ids([0, 1]);
        engine.load(&t2);
        assert_eq!(engine.total(), 1);
        assert_eq!(engine.delta(), &[1, 1]);
        // longer again
        let t3 = Sequence::from_ids([0, 0, 1, 1, 0, 1]);
        engine.load(&t3);
        assert_eq!(engine.delta(), delta_all::<u64>(&sh, &t3).as_slice());
    }

    #[test]
    fn preexisting_marks_are_respected() {
        let (s, mut t) = seqs("a b", "a b a b");
        t.mark(1);
        let sh = SensitiveSet::new(vec![s]);
        let mut engine = MatchEngine::<u64>::new(&sh);
        engine.load(&t);
        assert_eq!(engine.delta(), delta_all::<u64>(&sh, &t).as_slice());
        assert_eq!(engine.delta()[1], 0);
    }

    #[test]
    fn empty_and_degenerate_sequences() {
        let (s, _) = seqs("a b", "a");
        let sh = SensitiveSet::new(vec![s]);
        let mut engine = MatchEngine::<u64>::new(&sh);
        engine.load(&Sequence::empty());
        assert!(engine.total().is_zero());
        assert_eq!(engine.argmax(), None);
        assert!(engine.candidates().is_empty());
        let t = Sequence::from_ids([0]); // shorter than the pattern
        engine.load(&t);
        assert!(engine.total().is_zero());
    }

    #[test]
    fn single_symbol_pattern_delta() {
        let (s, t) = seqs("a", "a b a a");
        let sh = SensitiveSet::new(vec![s]);
        assert_engine_tracks_scratch::<u64>(&sh, &t);
    }

    #[test]
    fn candidates_are_ascending_nonzero_positions() {
        let (s, t) = seqs("a b c", "a a b c c b a e");
        let sh = SensitiveSet::new(vec![s]);
        let mut engine = MatchEngine::<u64>::new(&sh);
        engine.load(&t);
        assert_eq!(engine.candidates(), &[0, 1, 2, 3, 4]);
    }

    fn iseq(groups: &[&[u32]]) -> ItemsetSequence {
        ItemsetSequence::from_ids(groups.iter().map(|g| g.to_vec()))
    }

    #[test]
    fn itemset_engine_matches_scratch_deltas() {
        let p = ItemsetPattern::unconstrained(iseq(&[&[1], &[2]])).unwrap();
        let t = iseq(&[&[1, 3], &[1], &[2, 4], &[2]]);
        let pats = vec![p];
        let mut engine = ItemsetMatchEngine::<u64>::new(&pats);
        engine.load(&t);
        assert_eq!(
            engine.delta(),
            delta_elements_itemset::<u64>(&pats, &t).as_slice()
        );
        assert_eq!(engine.total(), matching_size_itemset::<u64>(&pats, &t));
        // item-level δ agrees with the scratch device
        for elem in 0..t.len() {
            for item in t.elements()[elem].live_items().collect::<Vec<_>>() {
                assert_eq!(
                    engine.item_delta(&t, elem, item),
                    delta_item_itemset::<u64>(&pats, &t, elem, item),
                    "elem {elem} item {item:?}"
                );
            }
        }
    }

    #[test]
    fn itemset_engine_refresh_after_item_mark() {
        let p = ItemsetPattern::unconstrained(iseq(&[&[1], &[2]])).unwrap();
        let mut t = iseq(&[&[1, 9], &[1], &[2, 8]]);
        let pats = vec![p];
        let mut engine = ItemsetMatchEngine::<u64>::new(&pats);
        engine.load(&t);
        assert_eq!(engine.total(), 2);
        // mark item 2 in element 2: inclusion of {2} there breaks
        t.elements_mut()[2].mark_item(Symbol::new(2));
        engine.refresh_element(&t, 2);
        assert!(engine.total().is_zero());
        assert_eq!(
            engine.delta(),
            delta_elements_itemset::<u64>(&pats, &t).as_slice()
        );
    }

    #[test]
    fn itemset_engine_mask_element() {
        let p = ItemsetPattern::unconstrained(iseq(&[&[1], &[2]])).unwrap();
        let t = iseq(&[&[1], &[1], &[2]]);
        let pats = vec![p];
        let mut engine = ItemsetMatchEngine::<u64>::new(&pats);
        engine.load(&t);
        assert_eq!(engine.delta(), &[1, 1, 2]);
        engine.apply_mask(2);
        assert!(engine.total().is_zero());
        assert_eq!(engine.delta(), &[0, 0, 0]);
    }

    #[test]
    fn constrained_itemset_engine() {
        let p = ItemsetPattern::new(
            iseq(&[&[1], &[2]]),
            ConstraintSet::uniform_gap(Gap::adjacent()),
        )
        .unwrap();
        let t = iseq(&[&[1], &[9], &[2], &[1], &[2]]);
        let pats = vec![p];
        let mut engine = ItemsetMatchEngine::<u64>::new(&pats);
        engine.load(&t);
        assert_eq!(engine.total(), 1); // only (3,4) is adjacent
        assert_eq!(
            engine.delta(),
            delta_elements_itemset::<u64>(&pats, &t).as_slice()
        );
    }
}
