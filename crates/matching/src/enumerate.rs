//! Explicit enumeration of the matching set `M_S^T` (Definition 1).
//!
//! Enumeration is worst-case exponential (Lemma 1) and is **never** used by
//! the sanitization algorithms — they work on counts. It exists as the
//! ground-truth oracle for property tests, for explaining sanitization
//! decisions in examples, and to reproduce the paper's worked examples
//! literally. A hard cap keeps adversarial inputs from exploding.

use seqhide_types::Sequence;

use crate::pattern::SensitivePattern;

/// Configuration for [`enumerate_embeddings`].
#[derive(Clone, Copy, Debug)]
pub struct EnumerateConfig {
    /// Stop after this many embeddings (the result is flagged truncated).
    pub max_embeddings: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig {
            max_embeddings: 1_000_000,
        }
    }
}

/// The enumerated matching set plus a truncation flag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embeddings {
    /// Each embedding is the strictly increasing list of 0-based positions
    /// of `T` matched by the pattern, in pattern order.
    pub embeddings: Vec<Vec<usize>>,
    /// Whether enumeration stopped at the cap.
    pub truncated: bool,
}

impl Embeddings {
    /// Number of embeddings found (a lower bound when `truncated`).
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// Whether the matching set is empty.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// Whether any embedding passes through 0-based position `i` — the
    /// oracle for `δ(T[i]) > 0`.
    pub fn uses_position(&self, i: usize) -> bool {
        self.embeddings.iter().any(|e| e.contains(&i))
    }

    /// `δ(T[i])` by brute force: the number of embeddings through `i`.
    pub fn delta(&self, i: usize) -> usize {
        self.embeddings.iter().filter(|e| e.contains(&i)).count()
    }
}

/// Enumerates all constrained embeddings of `p` into `t` (up to the cap),
/// in lexicographic order of position tuples.
pub fn enumerate_embeddings(
    p: &SensitivePattern,
    t: &Sequence,
    config: EnumerateConfig,
) -> Embeddings {
    let mut out = Embeddings {
        embeddings: Vec::new(),
        truncated: false,
    };
    let mut stack: Vec<usize> = Vec::with_capacity(p.len());
    recurse(p, t, 0, 0, &mut stack, &mut out, config.max_embeddings);
    out
}

fn recurse(
    p: &SensitivePattern,
    t: &Sequence,
    k: usize,
    from: usize,
    stack: &mut Vec<usize>,
    out: &mut Embeddings,
    cap: usize,
) {
    if out.truncated {
        return;
    }
    let m = p.len();
    if k == m {
        if out.embeddings.len() == cap {
            out.truncated = true;
            return;
        }
        out.embeddings.push(stack.clone());
        return;
    }
    let cs = p.constraints();
    let arrows = m.saturating_sub(1);
    for j in from..t.len() {
        if !p.seq()[k].matches(t[j]) {
            continue;
        }
        // prune on the incoming arrow's gap constraint
        if k > 0 {
            let gap_spec = cs.gap(k - 1, arrows);
            let gap = j - stack[k - 1] - 1;
            if gap < gap_spec.min {
                continue;
            }
            if gap_spec.max.is_some_and(|mx| gap > mx) {
                // positions only grow; every later j violates max too
                break;
            }
        }
        // prune on the window: span so far must stay within Ws
        if let (Some(ws), Some(&first)) = (cs.max_window, stack.first()) {
            if j - first + 1 > ws {
                break;
            }
        }
        stack.push(j);
        recurse(p, t, k + 1, j + 1, stack, out, cap);
        stack.pop();
        if out.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintSet, Gap};
    use seqhide_types::Alphabet;

    fn setup(s: &str, t: &str, cs: ConstraintSet) -> (SensitivePattern, Sequence) {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse(s, &mut sigma);
        let t = Sequence::parse(t, &mut sigma);
        (SensitivePattern::new(s, cs).unwrap(), t)
    }

    #[test]
    fn paper_definition1_matching_set() {
        // Paper (1-based): M = {(1,3,4),(1,3,5),(2,3,4),(2,3,5)}
        // 0-based: {(0,2,3),(0,2,4),(1,2,3),(1,2,4)}.
        let (p, t) = setup("a b c", "a a b c c b a e", ConstraintSet::none());
        let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert!(!m.truncated);
        assert_eq!(
            m.embeddings,
            vec![vec![0, 2, 3], vec![0, 2, 4], vec![1, 2, 3], vec![1, 2, 4]]
        );
    }

    #[test]
    fn paper_example2_deltas() {
        // δ(T[1])=2, δ(T[2])=2, δ(T[3])=4 (1-based) ⇒ 0-based 0,1,2.
        let (p, t) = setup("a b c", "a a b c c b a e", ConstraintSet::none());
        let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert_eq!(m.delta(0), 2);
        assert_eq!(m.delta(1), 2);
        assert_eq!(m.delta(2), 4);
        assert_eq!(m.delta(7), 0); // marking e does not affect the set
        assert!(m.uses_position(2));
        assert!(!m.uses_position(7));
    }

    #[test]
    fn cap_truncates() {
        let (p, t) = setup("a a", "a a a a a a", ConstraintSet::none());
        let m = enumerate_embeddings(&p, &t, EnumerateConfig { max_embeddings: 5 });
        assert!(m.truncated);
        assert_eq!(m.len(), 5);
        let full = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert_eq!(full.len(), 15); // C(6,2)
    }

    #[test]
    fn constraints_prune_enumeration() {
        let (p, t) = setup(
            "a b c",
            "a a b c c b a e",
            ConstraintSet::with_gaps(vec![Gap::adjacent(), Gap::bounded(2, 6)]),
        );
        let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert!(m.is_empty());
    }

    #[test]
    fn window_prunes_enumeration() {
        let (p, t) = setup("a b", "a x x b a b", ConstraintSet::with_max_window(2));
        let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert_eq!(m.embeddings, vec![vec![4, 5]]);
    }

    #[test]
    fn no_match_is_empty() {
        let (p, t) = setup("z", "a b c", ConstraintSet::none());
        // pattern symbol 'z' interned after t's alphabet — absent from t
        let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
