//! Matching for itemset sequences (§7.1): pattern elements match data
//! elements by **set inclusion** instead of symbol equality. The counting
//! machinery is shared with plain sequences through the `*_by` generic DPs.

use seqhide_num::Count;
use seqhide_types::{ItemsetSequence, Symbol};

use crate::constraints::ConstraintSet;
use crate::counting::count_matches_by;
use crate::pattern::PatternError;

/// A sensitive itemset-sequence pattern with occurrence constraints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ItemsetPattern {
    elements: ItemsetSequence,
    constraints: ConstraintSet,
}

impl ItemsetPattern {
    /// Creates a constrained itemset pattern. Every element must be a
    /// non-empty, mark-free itemset.
    pub fn new(
        elements: ItemsetSequence,
        constraints: ConstraintSet,
    ) -> Result<Self, PatternError> {
        if elements.is_empty() {
            return Err(PatternError::Empty);
        }
        for e in elements.elements() {
            if e.live_len() == 0 {
                return Err(PatternError::Empty);
            }
            if e.mark_count() > 0 {
                return Err(PatternError::ContainsMark);
            }
        }
        constraints
            .validate(elements.len())
            .map_err(PatternError::BadConstraints)?;
        Ok(ItemsetPattern {
            elements,
            constraints,
        })
    }

    /// Creates an unconstrained itemset pattern.
    pub fn unconstrained(elements: ItemsetSequence) -> Result<Self, PatternError> {
        Self::new(elements, ConstraintSet::none())
    }

    /// The pattern elements.
    pub fn elements(&self) -> &ItemsetSequence {
        &self.elements
    }

    /// The occurrence constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Pattern length (number of itemsets).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Always `false` (validated non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Builds a [`SensitivePattern`](crate::SensitivePattern)-shaped dummy for
/// dispatching the shared DP: `count_matches_by` only consults pattern
/// *length* and *constraints*, so we wrap those without a symbol sequence.
fn dispatch_pattern(len: usize, cs: &ConstraintSet) -> crate::SensitivePattern {
    // Any placeholder symbols work: the match closure supplied by callers
    // overrides symbol comparison entirely.
    let seq = seqhide_types::Sequence::from_ids((0..len as u32).collect::<Vec<_>>());
    crate::SensitivePattern::new(seq, cs.clone()).expect("validated by ItemsetPattern::new")
}

/// Counts constrained occurrences of `p` in `t` under set-inclusion
/// matching.
pub fn count_matches_itemset<C: Count>(p: &ItemsetPattern, t: &ItemsetSequence) -> C {
    let pat = dispatch_pattern(p.len(), p.constraints());
    let pe = p.elements().elements();
    let te = t.elements();
    count_matches_by::<C>(&pat, te.len(), |k, j| pe[k].included_in(&te[j]))
}

/// Combined matching-set size for several itemset patterns.
pub fn matching_size_itemset<C: Count>(patterns: &[ItemsetPattern], t: &ItemsetSequence) -> C {
    let mut total = C::zero();
    for p in patterns {
        total.add_assign(&count_matches_itemset::<C>(p, t));
    }
    total
}

/// Whether `t` supports `p` (≥ 1 constrained occurrence).
pub fn supports_itemset(t: &ItemsetSequence, p: &ItemsetPattern) -> bool {
    !count_matches_itemset::<seqhide_num::Sat64>(p, t).is_zero()
}

/// Support of `p` over a database of itemset sequences.
pub fn support_itemset(db: &[ItemsetSequence], p: &ItemsetPattern) -> usize {
    db.iter().filter(|t| supports_itemset(t, p)).count()
}

/// Element-level `δ`: for each element position `i` of `t`, the number of
/// occurrences (across all patterns) that would disappear if element `i`
/// stopped matching anything — the level-1 signal of §7.1's two-level
/// hierarchical heuristic. Computed by masking (the itemset analogue of
/// marking), which preserves indices and is therefore constraint-sound.
pub fn delta_elements_itemset<C: Count>(
    patterns: &[ItemsetPattern],
    t: &ItemsetSequence,
) -> Vec<C> {
    let total = matching_size_itemset::<C>(patterns, t);
    (0..t.len())
        .map(|masked| {
            let mut reduced = C::zero();
            for p in patterns {
                let pat = dispatch_pattern(p.len(), p.constraints());
                let pe = p.elements().elements();
                let te = t.elements();
                reduced.add_assign(&count_matches_by::<C>(&pat, te.len(), |k, j| {
                    j != masked && pe[k].included_in(&te[j])
                }));
            }
            total.saturating_sub(&reduced)
        })
        .collect()
}

/// Item-level `δ` at a fixed element: how many occurrences disappear if
/// `item` inside element `elem` of `t` is marked — the level-2 signal of
/// the hierarchical heuristic. (Marking one item only breaks the inclusion
/// of pattern elements that *require* that item.)
pub fn delta_item_itemset<C: Count>(
    patterns: &[ItemsetPattern],
    t: &ItemsetSequence,
    elem: usize,
    item: Symbol,
) -> C {
    let total = matching_size_itemset::<C>(patterns, t);
    let mut reduced = C::zero();
    for p in patterns {
        let pat = dispatch_pattern(p.len(), p.constraints());
        let pe = p.elements().elements();
        let te = t.elements();
        reduced.add_assign(&count_matches_by::<C>(&pat, te.len(), |k, j| {
            if j == elem {
                // element `elem` with `item` marked: inclusion must hold
                // without using `item`
                pe[k].live_items().all(|s| s != item && te[j].contains(s))
            } else {
                pe[k].included_in(&te[j])
            }
        }));
    }
    total.saturating_sub(&reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Gap;
    use seqhide_num::Sat64;

    fn iseq(groups: &[&[u32]]) -> ItemsetSequence {
        ItemsetSequence::from_ids(groups.iter().map(|g| g.to_vec()))
    }

    fn ipat(groups: &[&[u32]]) -> ItemsetPattern {
        ItemsetPattern::unconstrained(iseq(groups)).unwrap()
    }

    #[test]
    fn inclusion_matching_counts() {
        // pattern ⟨{1} {2}⟩ in ⟨{1,3} {1} {2,4}⟩:
        // {1} matches elements 0,1; {2} matches element 2 ⇒ 2 embeddings.
        let p = ipat(&[&[1], &[2]]);
        let t = iseq(&[&[1, 3], &[1], &[2, 4]]);
        assert_eq!(count_matches_itemset::<u64>(&p, &t), 2);
        assert!(supports_itemset(&t, &p));
    }

    #[test]
    fn multi_item_pattern_elements() {
        // ⟨{1,2}⟩ requires both items in one element.
        let p = ipat(&[&[1, 2]]);
        assert_eq!(count_matches_itemset::<u64>(&p, &iseq(&[&[1], &[2]])), 0);
        assert_eq!(count_matches_itemset::<u64>(&p, &iseq(&[&[1, 2, 3]])), 1);
    }

    #[test]
    fn constraints_apply() {
        let elements = iseq(&[&[1], &[2]]);
        let p = ItemsetPattern::new(elements, ConstraintSet::uniform_gap(Gap::adjacent())).unwrap();
        // ⟨{1} {9} {2}⟩: gap 1 between matches ⇒ rejected by adjacency
        assert_eq!(
            count_matches_itemset::<u64>(&p, &iseq(&[&[1], &[9], &[2]])),
            0
        );
        assert_eq!(count_matches_itemset::<u64>(&p, &iseq(&[&[1], &[2]])), 1);
    }

    #[test]
    fn element_deltas_localise_damage() {
        let p = ipat(&[&[1], &[2]]);
        let t = iseq(&[&[1], &[1], &[2]]);
        // embeddings (0,2),(1,2): element 0 in 1, element 1 in 1, element 2 in 2.
        let d = delta_elements_itemset::<u64>(&[p], &t);
        assert_eq!(d, vec![1, 1, 2]);
    }

    #[test]
    fn item_delta_distinguishes_items() {
        // pattern ⟨{1}⟩ and data ⟨{1,2}⟩: marking item 2 changes nothing,
        // marking item 1 kills the single occurrence.
        let p = ipat(&[&[1]]);
        let t = iseq(&[&[1, 2]]);
        assert_eq!(
            delta_item_itemset::<u64>(std::slice::from_ref(&p), &t, 0, Symbol::new(2)),
            0
        );
        assert_eq!(delta_item_itemset::<u64>(&[p], &t, 0, Symbol::new(1)), 1);
    }

    #[test]
    fn marked_data_items_do_not_match() {
        let p = ipat(&[&[1]]);
        let mut t = iseq(&[&[1, 2]]);
        assert_eq!(count_matches_itemset::<Sat64>(&p, &t), Sat64::new(1));
        t.elements_mut()[0].mark_item(Symbol::new(1));
        assert_eq!(count_matches_itemset::<Sat64>(&p, &t), Sat64::new(0));
    }

    #[test]
    fn support_over_database() {
        let p = ipat(&[&[1], &[2]]);
        let db = vec![
            iseq(&[&[1], &[2]]),
            iseq(&[&[2], &[1]]),
            iseq(&[&[1, 2], &[2, 3]]),
        ];
        assert_eq!(support_itemset(&db, &p), 2);
    }

    #[test]
    fn validation_errors() {
        assert!(ItemsetPattern::unconstrained(ItemsetSequence::new(vec![])).is_err());
        assert!(ItemsetPattern::unconstrained(iseq(&[&[]])).is_err());
        let mut bad = iseq(&[&[1]]);
        bad.elements_mut()[0].mark_item(Symbol::new(1));
        assert!(ItemsetPattern::unconstrained(bad).is_err());
    }
}
