//! Occurrence constraints (paper §5): per-arrow min/max gaps and the global
//! maximum window.
//!
//! Constraints restrict which embeddings *count* as occurrences of a
//! sensitive pattern. They are properties of occurrences, not of patterns:
//! the paper writes `a →⁰ b →₂⁶ c` for "`a` directly followed by `b`, then
//! `c` after at least 2 and at most 6 intervening events".
//!
//! * **Gap** constraints are *local* (per arrow, i.e. per consecutive
//!   pattern pair): the gap between matched positions `i_k < i_{k+1}` is the
//!   number of intervening elements, `i_{k+1} − i_k − 1`.
//! * The **max window** constraint is *global*: the whole occurrence must
//!   fit in `Ws` consecutive elements, `i_m − i₁ + 1 ≤ Ws`.

use std::fmt;

/// A min/max gap constraint on one pattern arrow.
///
/// `gap = i_{k+1} − i_k − 1` must satisfy `min ≤ gap` and, when `max` is
/// set, `gap ≤ max`. [`Gap::any`] (min 0, no max) is the unconstrained
/// arrow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Gap {
    /// Minimum number of intervening elements (`mg`).
    pub min: usize,
    /// Maximum number of intervening elements (`Mg`), if bounded.
    pub max: Option<usize>,
}

impl Gap {
    /// The unconstrained arrow: any gap allowed.
    pub const fn any() -> Self {
        Gap { min: 0, max: None }
    }

    /// An exact-adjacency arrow (`→⁰`): the next symbol must directly
    /// follow.
    pub const fn adjacent() -> Self {
        Gap {
            min: 0,
            max: Some(0),
        }
    }

    /// A bounded arrow `→_mg^Mg`.
    ///
    /// # Panics
    /// Panics if `max < min` (the paper requires `Mg ≥ mg`).
    pub fn bounded(min: usize, max: usize) -> Self {
        assert!(max >= min, "max gap must be ≥ min gap");
        Gap {
            min,
            max: Some(max),
        }
    }

    /// Whether `gap` intervening elements satisfy this constraint.
    #[inline]
    pub fn allows(&self, gap: usize) -> bool {
        gap >= self.min && self.max.is_none_or(|m| gap <= m)
    }

    /// Whether this arrow is unconstrained.
    pub fn is_any(&self) -> bool {
        self.min == 0 && self.max.is_none()
    }
}

impl Default for Gap {
    fn default() -> Self {
        Gap::any()
    }
}

impl fmt::Display for Gap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "→[{},{}]", self.min, max),
            None => write!(f, "→[{},∞)", self.min),
        }
    }
}

/// The full constraint specification attached to one sensitive pattern:
/// per-arrow gaps plus an optional max window.
///
/// An empty `gaps` vector means "every arrow unconstrained"; a non-empty
/// vector must have exactly `pattern.len() − 1` entries (validated by
/// [`SensitivePattern::new`](crate::SensitivePattern::new)).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ConstraintSet {
    /// Per-arrow gap constraints (empty ⇒ all arrows unconstrained).
    pub gaps: Vec<Gap>,
    /// Maximum window `Ws`: occurrence must span ≤ `Ws` elements.
    pub max_window: Option<usize>,
}

impl ConstraintSet {
    /// No constraints at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same gap on every arrow.
    pub fn uniform_gap(gap: Gap) -> Self {
        // Represented lazily: materialised per-pattern by `for_arrows`.
        ConstraintSet {
            gaps: vec![gap],
            max_window: None,
        }
    }

    /// Explicit per-arrow gaps.
    pub fn with_gaps(gaps: Vec<Gap>) -> Self {
        ConstraintSet {
            gaps,
            max_window: None,
        }
    }

    /// Only a max-window constraint.
    pub fn with_max_window(ws: usize) -> Self {
        ConstraintSet {
            gaps: Vec::new(),
            max_window: Some(ws),
        }
    }

    /// Adds a max window to `self`.
    pub fn and_max_window(mut self, ws: usize) -> Self {
        self.max_window = Some(ws);
        self
    }

    /// Whether no constraint is active.
    pub fn is_none(&self) -> bool {
        self.max_window.is_none() && self.gaps.iter().all(Gap::is_any)
    }

    /// Whether any gap constraint is active.
    pub fn has_gaps(&self) -> bool {
        self.gaps.iter().any(|g| !g.is_any())
    }

    /// The gap constraint for arrow `k` (between pattern positions `k` and
    /// `k+1`) of a pattern with `arrows` arrows. A single-entry gap vector
    /// is broadcast to every arrow ([`ConstraintSet::uniform_gap`]); an
    /// empty vector yields [`Gap::any`].
    #[inline]
    pub fn gap(&self, k: usize, arrows: usize) -> Gap {
        match self.gaps.len() {
            0 => Gap::any(),
            1 if arrows != 1 => self.gaps[0],
            _ => self.gaps.get(k).copied().unwrap_or_else(Gap::any),
        }
    }

    /// Validates this constraint set against a pattern with `len` symbols.
    pub fn validate(&self, len: usize) -> Result<(), String> {
        let arrows = len.saturating_sub(1);
        if !(self.gaps.len() <= 1 || self.gaps.len() == arrows) {
            return Err(format!(
                "pattern with {arrows} arrows given {} gap constraints",
                self.gaps.len()
            ));
        }
        if let Some(ws) = self.max_window {
            if ws < len {
                return Err(format!(
                    "max window {ws} cannot fit a pattern of {len} symbols"
                ));
            }
        }
        Ok(())
    }

    /// Whether an embedding (strictly increasing 0-based positions)
    /// satisfies every active constraint. Used by the enumerator and as the
    /// test oracle for the counting DPs.
    pub fn satisfied_by(&self, embedding: &[usize]) -> bool {
        let arrows = embedding.len().saturating_sub(1);
        for (k, w) in embedding.windows(2).enumerate() {
            let gap = w[1] - w[0] - 1;
            if !self.gap(k, arrows).allows(gap) {
                return false;
            }
        }
        if let (Some(ws), Some(&first), Some(&last)) =
            (self.max_window, embedding.first(), embedding.last())
        {
            if last - first + 1 > ws {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "unconstrained");
        }
        let mut parts = Vec::new();
        if self.has_gaps() {
            let gaps: Vec<String> = self.gaps.iter().map(Gap::to_string).collect();
            parts.push(format!("gaps[{}]", gaps.join(" ")));
        }
        if let Some(ws) = self.max_window {
            parts.push(format!("window≤{ws}"));
        }
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_allows_ranges() {
        let g = Gap::bounded(2, 6);
        assert!(!g.allows(1));
        assert!(g.allows(2));
        assert!(g.allows(6));
        assert!(!g.allows(7));
        assert!(Gap::any().allows(1000));
        assert!(Gap::adjacent().allows(0));
        assert!(!Gap::adjacent().allows(1));
    }

    #[test]
    #[should_panic(expected = "max gap must be ≥ min gap")]
    fn inverted_gap_rejected() {
        let _ = Gap::bounded(5, 2);
    }

    #[test]
    fn uniform_gap_broadcasts() {
        let cs = ConstraintSet::uniform_gap(Gap::bounded(1, 3));
        assert_eq!(cs.gap(0, 4), Gap::bounded(1, 3));
        assert_eq!(cs.gap(3, 4), Gap::bounded(1, 3));
    }

    #[test]
    fn explicit_gaps_indexed() {
        let cs = ConstraintSet::with_gaps(vec![Gap::adjacent(), Gap::bounded(2, 6)]);
        assert_eq!(cs.gap(0, 2), Gap::adjacent());
        assert_eq!(cs.gap(1, 2), Gap::bounded(2, 6));
    }

    #[test]
    fn validate_arity() {
        let cs = ConstraintSet::with_gaps(vec![Gap::any(), Gap::any(), Gap::any()]);
        assert!(cs.validate(4).is_ok());
        assert!(cs.validate(3).is_err());
        assert!(ConstraintSet::none().validate(10).is_ok());
        assert!(ConstraintSet::with_max_window(2).validate(3).is_err());
        assert!(ConstraintSet::with_max_window(3).validate(3).is_ok());
    }

    #[test]
    fn paper_example_gap_rejection() {
        // a →⁰ b →₂⁶ c over T = ⟨a a b c c b a e⟩ (0-based positions):
        // the only a-directly-followed-by-b pair is (1,2); c then appears at
        // positions 3 and 4 with gaps 0 and 1 < 2, so no valid occurrence.
        let cs = ConstraintSet::with_gaps(vec![Gap::adjacent(), Gap::bounded(2, 6)]);
        assert!(!cs.satisfied_by(&[1, 2, 3]));
        assert!(!cs.satisfied_by(&[1, 2, 4]));
        // and the unconstrained embedding (0,2,3) fails the first arrow
        assert!(!cs.satisfied_by(&[0, 2, 3]));
    }

    #[test]
    fn window_constrains_span() {
        let cs = ConstraintSet::with_max_window(3);
        assert!(cs.satisfied_by(&[2, 3, 4])); // span 3
        assert!(!cs.satisfied_by(&[2, 5])); // span 4
        assert!(cs.satisfied_by(&[7])); // single symbol: span 1
        assert!(cs.satisfied_by(&[])); // degenerate
    }

    #[test]
    fn is_none_detection() {
        assert!(ConstraintSet::none().is_none());
        assert!(ConstraintSet::with_gaps(vec![Gap::any()]).is_none());
        assert!(!ConstraintSet::with_max_window(5).is_none());
        assert!(!ConstraintSet::uniform_gap(Gap::adjacent()).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ConstraintSet::none().to_string(), "unconstrained");
        let cs = ConstraintSet::uniform_gap(Gap::bounded(0, 2)).and_max_window(9);
        assert_eq!(cs.to_string(), "gaps[→[0,2]], window≤9");
    }
}
