//! The [`PatternDomain`] trait: one sanitization core, many pattern classes.
//!
//! The paper's two-level heuristic (§4) is a single algorithm — locally,
//! mark the position with the largest `δ` until the matching set is empty;
//! globally, sort supporters ascending by matching-set size and sanitize
//! all but `ψ` — but the repo grew five copies of it, one per pattern
//! class (plain, itemset, timed, regex, spatiotemporal). What actually
//! varies between those copies is the *occurrence model*: how embeddings
//! are counted, how `δ` is obtained, what "distort this position" means,
//! and how support is re-checked afterwards. [`PatternDomain`] abstracts
//! exactly that surface, so `seqhide-core` keeps one local marking loop,
//! one victim-selection implementation, and one streaming driver, all
//! generic over the domain.
//!
//! The trait is deliberately **not object-safe** ([`PatternDomain::distort`]
//! is generic over the RNG): every caller is monomorphized, so the hot
//! marking loop pays no dynamic dispatch and the zero-per-mark-allocation
//! property of [`MatchEngine`] survives the abstraction.
//!
//! Two plain-pattern domains live here because their state is this crate's
//! own: [`MatchEngine`] itself (the incremental engine) and
//! [`ScratchDomain`] (the from-scratch oracle), plus
//! [`ItemsetMatchEngine`] for itemset sequences. The timed, regex, and
//! spatiotemporal domains live with their counting code in `seqhide-core`,
//! `seqhide-re`, and `seqhide-st`.

use rand::seq::IndexedRandom;
use rand::Rng;
use seqhide_num::Count;
use seqhide_obs::Phase;
use seqhide_types::{ItemsetSequence, OpKind, Sequence, Symbol};

use crate::counting::matching_size;
use crate::delta::{argmax_delta, delta_all};
use crate::engine::{EngineStats, ItemsetMatchEngine, MatchEngine};
use crate::itemset::{matching_size_itemset, supports_itemset};
use crate::pattern::SensitiveSet;
use crate::support::supports;

/// How positions are chosen inside one sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalStrategy {
    /// The paper's local heuristic: *choose the marking position that is
    /// involved in most matches*, i.e. `argmax_i δ(T[i])`, iterated until
    /// the matching set is empty. Ties break to the smallest index.
    Heuristic,
    /// The random baseline (the first letter of RH/RR): a uniformly random
    /// *reasonable* position — one involved in at least one matching, as
    /// §6 specifies ("the random choice is actually performed only among
    /// reasonable choices").
    Random,
}

/// An occurrence model the generic sanitization core can drive.
///
/// One value of a `PatternDomain` carries the sensitive patterns plus any
/// scratch state (DP tables, δ buffers) and answers every question the
/// core layers ask:
///
/// * **global selection** — [`is_supporter`](PatternDomain::is_supporter),
///   [`matching_size`](PatternDomain::matching_size),
///   [`seq_len`](PatternDomain::seq_len),
///   [`distinct_ratio`](PatternDomain::distinct_ratio) feed the
///   supporter-statistics pass that victim selection sorts by;
/// * **local marking** — [`load`](PatternDomain::load),
///   [`argmax`](PatternDomain::argmax),
///   [`candidates`](PatternDomain::candidates),
///   [`distort`](PatternDomain::distort) drive the inner loop (Lemma 2/3
///   machinery for plain counts, Lemma 4/5 for gap/window constraints —
///   whichever the implementation needs);
/// * **verification** —
///   [`supports_pattern`](PatternDomain::supports_pattern) re-checks
///   residual support per pattern after sanitization.
///
/// # Statefulness contract
///
/// Stateful domains (the engines) key `argmax`/`candidates`/`distort` off
/// state built by [`load`](PatternDomain::load); stateless domains
/// recompute from `t` each call and ignore `load`. The driver therefore
/// always calls `load(t)` once before the marking loop, and passes the
/// *same* sequence to every subsequent call until the loop ends.
///
/// # Termination contract
///
/// Whenever `argmax`/`candidates` offer a position, `distort` at that
/// position must strictly decrease the total occurrence count and
/// introduce no new occurrences (marks match nothing — Theorem 1's
/// argument), so the marking loop terminates.
///
/// # Edit-operation contract
///
/// `distort` applies the operator family the domain was configured with
/// ([`set_op`](PatternDomain::set_op); `Mark` by default). The termination
/// contract binds **every** family: a `Delete` must never splice two
/// fragments into a fresh sensitive occurrence across the deletion
/// junction, and a `Substitute` must never choose a replacement symbol
/// that participates in one — when no safe edit exists at the chosen
/// position the domain falls back to `Mark`, which is always safe.
/// Deletion additionally shifts every later index, so any positional state
/// (δ buffers, prefix tables, gap distances) must be re-derived, not
/// repaired, after a delete; domains whose incremental repair assumes
/// stable positions advertise `Mark` only via
/// [`supported_ops`](PatternDomain::supported_ops).
pub trait PatternDomain {
    /// The sequence type this domain sanitizes.
    type Seq: Default + Send;
    /// The embedding-count arithmetic (saturating or exact).
    type Count: Count;

    /// Short stable domain name (`"plain"`, `"itemset"`, …) — keys
    /// human-readable output.
    fn name(&self) -> &'static str;

    /// The obs phase the domain's sanitization run is attributed to.
    fn phase(&self) -> Phase;

    /// The progress-bar label for this domain's victim loop.
    fn progress_label(&self) -> &'static str {
        "sanitize"
    }

    /// Number of sensitive patterns (arity of the residual-support
    /// vector).
    fn pattern_count(&self) -> usize;

    /// The operator families this domain can apply. The default is the
    /// paper's: Δ-marking only. Domains that re-derive their counts per
    /// edit and enforce the no-new-occurrence guard may advertise
    /// `Delete`/`Substitute` too.
    fn supported_ops(&self) -> &'static [OpKind] {
        &[OpKind::Mark]
    }

    /// Configures the operator family `distort` applies. Returns `false`
    /// (leaving the domain unchanged) when `op` is not in
    /// [`supported_ops`](PatternDomain::supported_ops) — callers surface
    /// that as a capability error, they do not fall back silently.
    fn set_op(&mut self, op: OpKind) -> bool {
        op == OpKind::Mark
    }

    /// Whether `t` supports at least one sensitive pattern. The default
    /// asks for the full count; implementations with a cheaper boolean
    /// check should override.
    fn is_supporter(&mut self, t: &Self::Seq) -> bool {
        !self.matching_size(t).is_zero()
    }

    /// Total matching-set size of all patterns in `t` (the global
    /// `Heuristic` sort key).
    fn matching_size(&mut self, t: &Self::Seq) -> Self::Count;

    /// Sequence length (global `Length` sort key).
    fn seq_len(&self, t: &Self::Seq) -> usize;

    /// Unmarked-distinct-symbol ratio in `[0, 1]` (global
    /// `AutoCorrelation` sort key; 1.0 where the notion is degenerate —
    /// empty sequences, or domains without a symbol alphabet).
    fn distinct_ratio(&self, t: &Self::Seq) -> f64;

    /// Prepares per-sequence state for the marking loop. Stateless
    /// domains ignore this.
    fn load(&mut self, t: &Self::Seq) {
        let _ = t;
    }

    /// The position with the largest `δ` (ties to the smallest index), or
    /// `None` when no occurrence remains.
    fn argmax(&mut self, t: &mut Self::Seq) -> Option<usize>;

    /// The positions with `δ > 0`, ascending — the "reasonable choices"
    /// the random local strategy draws from.
    fn candidates(&mut self, t: &mut Self::Seq) -> &[usize];

    /// Distorts `t` at `pos` and repairs any incremental state, returning
    /// the number of distortions introduced (≥ 1). Domains with interior
    /// structure (itemset level-2 item marking, spatiotemporal
    /// displace-vs-suppress) use `strategy`/`rng` for their inner choice;
    /// flat domains ignore both.
    fn distort<R: Rng + ?Sized>(
        &mut self,
        t: &mut Self::Seq,
        pos: usize,
        strategy: LocalStrategy,
        rng: &mut R,
    ) -> usize;

    /// Whether `t` still supports sensitive pattern `k` (residual-support
    /// verification).
    fn supports_pattern(&mut self, t: &Self::Seq, k: usize) -> bool;

    /// Counting-engine health counters accumulated so far (zero for
    /// domains without an incremental engine).
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }
}

/// Unmarked-distinct-symbol ratio of a plain sequence (1.0 when empty).
fn plain_distinct_ratio(t: &Sequence) -> f64 {
    if t.is_empty() {
        return 1.0;
    }
    let mut syms: Vec<Symbol> = t.iter().filter(|s| !s.is_mark()).copied().collect();
    syms.sort_unstable();
    syms.dedup();
    syms.len() as f64 / t.len() as f64
}

/// Plain sequences driven by the incremental [`MatchEngine`]: tables
/// built once per victim, repaired per mark, zero per-mark allocations on
/// the unconstrained and gap-constrained paths.
impl<C: Count> PatternDomain for MatchEngine<C> {
    type Seq = Sequence;
    type Count = C;

    fn name(&self) -> &'static str {
        "plain"
    }

    fn phase(&self) -> Phase {
        Phase::Sanitize
    }

    fn pattern_count(&self) -> usize {
        self.sensitive_set().len()
    }

    fn is_supporter(&mut self, t: &Sequence) -> bool {
        self.sensitive_set().iter().any(|p| supports(t, p))
    }

    fn matching_size(&mut self, t: &Sequence) -> C {
        matching_size::<C>(self.sensitive_set(), t)
    }

    fn seq_len(&self, t: &Sequence) -> usize {
        t.len()
    }

    fn distinct_ratio(&self, t: &Sequence) -> f64 {
        plain_distinct_ratio(t)
    }

    fn load(&mut self, t: &Sequence) {
        MatchEngine::load(self, t);
    }

    fn argmax(&mut self, _t: &mut Sequence) -> Option<usize> {
        MatchEngine::argmax(self)
    }

    fn candidates(&mut self, _t: &mut Sequence) -> &[usize] {
        MatchEngine::candidates(self)
    }

    fn distort<R: Rng + ?Sized>(
        &mut self,
        t: &mut Sequence,
        pos: usize,
        _strategy: LocalStrategy,
        _rng: &mut R,
    ) -> usize {
        t.mark(pos);
        self.apply_mark(pos);
        1
    }

    fn supports_pattern(&mut self, t: &Sequence, k: usize) -> bool {
        supports(t, &self.sensitive_set().patterns()[k])
    }

    fn stats(&self) -> EngineStats {
        MatchEngine::stats(self)
    }
}

/// Plain sequences recounted from scratch every iteration — the original
/// pre-engine path, kept as the `--engine=scratch` escape hatch and the
/// oracle the incremental path is parity-tested against. Same choices,
/// same RNG consumption, only slower.
pub struct ScratchDomain<'a, C: Count> {
    sh: &'a SensitiveSet,
    delta: Vec<C>,
    candidates: Vec<usize>,
}

impl<'a, C: Count> ScratchDomain<'a, C> {
    /// A scratch domain over `sh`.
    pub fn new(sh: &'a SensitiveSet) -> Self {
        ScratchDomain {
            sh,
            delta: Vec::new(),
            candidates: Vec::new(),
        }
    }
}

impl<C: Count> PatternDomain for ScratchDomain<'_, C> {
    type Seq = Sequence;
    type Count = C;

    fn name(&self) -> &'static str {
        "plain"
    }

    fn phase(&self) -> Phase {
        Phase::Sanitize
    }

    fn pattern_count(&self) -> usize {
        self.sh.len()
    }

    fn is_supporter(&mut self, t: &Sequence) -> bool {
        self.sh.iter().any(|p| supports(t, p))
    }

    fn matching_size(&mut self, t: &Sequence) -> C {
        matching_size::<C>(self.sh, t)
    }

    fn seq_len(&self, t: &Sequence) -> usize {
        t.len()
    }

    fn distinct_ratio(&self, t: &Sequence) -> f64 {
        plain_distinct_ratio(t)
    }

    fn argmax(&mut self, t: &mut Sequence) -> Option<usize> {
        self.delta = delta_all::<C>(self.sh, t);
        argmax_delta(&self.delta)
    }

    fn candidates(&mut self, t: &mut Sequence) -> &[usize] {
        self.delta = delta_all::<C>(self.sh, t);
        self.candidates.clear();
        self.candidates
            .extend(self.delta.iter().enumerate().filter_map(|(i, d)| {
                if d.is_zero() {
                    None
                } else {
                    Some(i)
                }
            }));
        &self.candidates
    }

    fn distort<R: Rng + ?Sized>(
        &mut self,
        t: &mut Sequence,
        pos: usize,
        _strategy: LocalStrategy,
        _rng: &mut R,
    ) -> usize {
        t.mark(pos);
        1
    }

    fn supports_pattern(&mut self, t: &Sequence, k: usize) -> bool {
        supports(t, &self.sh.patterns()[k])
    }
}

/// Itemset sequences driven by [`ItemsetMatchEngine`]. A "position" is a
/// level-1 element index; [`distort`](PatternDomain::distort) runs the
/// level-2 inner loop, marking individual items inside the chosen element
/// until that element's `δ` drops to zero, so collateral damage stays
/// item-granular (§7's two-level refinement).
impl<C: Count> PatternDomain for ItemsetMatchEngine<C> {
    type Seq = ItemsetSequence;
    type Count = C;

    fn name(&self) -> &'static str {
        "itemset"
    }

    fn phase(&self) -> Phase {
        Phase::ItemsetSanitize
    }

    fn progress_label(&self) -> &'static str {
        "sanitize (itemset)"
    }

    fn pattern_count(&self) -> usize {
        self.patterns().len()
    }

    fn is_supporter(&mut self, t: &ItemsetSequence) -> bool {
        self.patterns().iter().any(|p| supports_itemset(t, p))
    }

    fn matching_size(&mut self, t: &ItemsetSequence) -> C {
        matching_size_itemset::<C>(self.patterns(), t)
    }

    fn seq_len(&self, t: &ItemsetSequence) -> usize {
        t.len()
    }

    fn distinct_ratio(&self, t: &ItemsetSequence) -> f64 {
        let total: usize = t.elements().iter().map(|e| e.items().len()).sum();
        if total == 0 {
            return 1.0;
        }
        let mut items: Vec<Symbol> = t.elements().iter().flat_map(|e| e.live_items()).collect();
        items.sort_unstable();
        items.dedup();
        items.len() as f64 / total as f64
    }

    fn load(&mut self, t: &ItemsetSequence) {
        ItemsetMatchEngine::load(self, t);
    }

    fn argmax(&mut self, _t: &mut ItemsetSequence) -> Option<usize> {
        ItemsetMatchEngine::argmax(self)
    }

    fn candidates(&mut self, _t: &mut ItemsetSequence) -> &[usize] {
        ItemsetMatchEngine::candidates(self)
    }

    fn distort<R: Rng + ?Sized>(
        &mut self,
        t: &mut ItemsetSequence,
        elem: usize,
        strategy: LocalStrategy,
        rng: &mut R,
    ) -> usize {
        let mut marks = 0;
        loop {
            // Level 2: which item inside the chosen element to mark.
            let live: Vec<Symbol> = t.elements()[elem].live_items().collect();
            let item = match strategy {
                LocalStrategy::Heuristic => {
                    let mut best: Option<(Symbol, C)> = None;
                    for &item in &live {
                        let d = self.item_delta(t, elem, item);
                        if d.is_zero() {
                            continue;
                        }
                        match best {
                            Some((_, ref bd)) if d <= *bd => {}
                            _ => best = Some((item, d)),
                        }
                    }
                    best.map(|(item, _)| item)
                }
                LocalStrategy::Random => {
                    let candidates: Vec<Symbol> = live
                        .iter()
                        .copied()
                        .filter(|&item| !self.item_delta(t, elem, item).is_zero())
                        .collect();
                    candidates.choose(rng).copied()
                }
            };
            let Some(item) = item else {
                break;
            };
            t.elements_mut()[elem].mark_item(item);
            marks += 1;
            self.refresh_element(t, elem);
            if self.delta()[elem].is_zero() {
                break;
            }
        }
        marks
    }

    fn supports_pattern(&mut self, t: &ItemsetSequence, k: usize) -> bool {
        supports_itemset(t, &self.patterns()[k])
    }

    fn stats(&self) -> EngineStats {
        ItemsetMatchEngine::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use seqhide_num::Sat64;
    use seqhide_types::Alphabet;

    fn setup() -> (SensitiveSet, Sequence, Alphabet) {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b c", &mut sigma);
        let t = Sequence::parse("a a b c c b a e", &mut sigma);
        (SensitiveSet::new(vec![s]), t, sigma)
    }

    /// The engine domain and the scratch domain must agree on every
    /// question the driver asks.
    #[test]
    fn engine_and_scratch_domains_agree() {
        let (sh, mut t, _) = setup();
        let mut eng = MatchEngine::<Sat64>::new(&sh);
        let mut scr = ScratchDomain::<Sat64>::new(&sh);
        assert_eq!(eng.name(), scr.name());
        assert_eq!(
            PatternDomain::pattern_count(&eng),
            PatternDomain::pattern_count(&scr)
        );
        assert_eq!(
            PatternDomain::is_supporter(&mut eng, &t),
            PatternDomain::is_supporter(&mut scr, &t)
        );
        assert_eq!(
            PatternDomain::matching_size(&mut eng, &t),
            PatternDomain::matching_size(&mut scr, &t)
        );
        PatternDomain::load(&mut eng, &t);
        let mut t2 = t.clone();
        assert_eq!(
            PatternDomain::argmax(&mut eng, &mut t),
            PatternDomain::argmax(&mut scr, &mut t2)
        );
        assert_eq!(
            PatternDomain::candidates(&mut eng, &mut t).to_vec(),
            PatternDomain::candidates(&mut scr, &mut t2).to_vec()
        );
    }

    #[test]
    fn plain_distort_marks_and_repairs() {
        let (sh, mut t, _) = setup();
        let mut eng = MatchEngine::<Sat64>::new(&sh);
        PatternDomain::load(&mut eng, &t);
        let mut rng = SmallRng::seed_from_u64(0);
        let pos = PatternDomain::argmax(&mut eng, &mut t).unwrap();
        let n = eng.distort(&mut t, pos, LocalStrategy::Heuristic, &mut rng);
        assert_eq!(n, 1);
        assert!(t[pos].is_mark());
        // marking the paper's b kills every occurrence at once
        assert_eq!(PatternDomain::argmax(&mut eng, &mut t), None);
        assert!(!PatternDomain::supports_pattern(&mut eng, &t, 0));
    }

    /// All domains in this crate keep the paper's operator model: Δ-mark
    /// only, and `set_op` refuses anything else without mutating state.
    #[test]
    fn mark_only_domains_reject_edit_ops() {
        let (sh, _, _) = setup();
        let mut eng = MatchEngine::<Sat64>::new(&sh);
        assert_eq!(PatternDomain::supported_ops(&eng), &[OpKind::Mark]);
        assert!(eng.set_op(OpKind::Mark));
        assert!(!eng.set_op(OpKind::Delete));
        assert!(!eng.set_op(OpKind::Substitute));
        let mut scr = ScratchDomain::<Sat64>::new(&sh);
        assert!(!scr.set_op(OpKind::Delete));
    }

    #[test]
    fn distinct_ratio_matches_global_strategy_semantics() {
        let mut sigma = Alphabet::new();
        let varied = Sequence::parse("a b c d", &mut sigma);
        let repetitive = Sequence::parse("a a a b", &mut sigma);
        let sh = SensitiveSet::new(vec![Sequence::parse("a b", &mut sigma)]);
        let eng = MatchEngine::<Sat64>::new(&sh);
        assert_eq!(eng.distinct_ratio(&varied), 1.0);
        assert_eq!(eng.distinct_ratio(&repetitive), 0.5);
        assert_eq!(eng.distinct_ratio(&Sequence::default()), 1.0);
    }
}
