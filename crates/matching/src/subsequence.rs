//! Plain subsequence containment `U ⊑ V`.

use seqhide_types::Sequence;

/// Whether `u ⊑ v`: `u` can be obtained from `v` by deleting symbols
/// (paper §3.1). Greedy two-pointer scan, `O(|v|)`; marks in `v` match
/// nothing, and a `u` containing a mark is never a subsequence of anything.
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::is_subsequence;
/// let mut sigma = Alphabet::new();
/// let u = Sequence::parse("a c", &mut sigma);
/// let v = Sequence::parse("a b c", &mut sigma);
/// assert!(is_subsequence(&u, &v));
/// assert!(!is_subsequence(&v, &u));
/// ```
pub fn is_subsequence(u: &Sequence, v: &Sequence) -> bool {
    let mut it = u.iter();
    let Some(mut needle) = it.next().copied() else {
        return true; // ⟨⟩ ⊑ anything
    };
    for &sym in v {
        if needle.matches(sym) {
            match it.next() {
                Some(&next) => needle = next,
                None => return true,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqhide_types::Symbol;

    #[test]
    fn empty_is_subsequence_of_everything() {
        assert!(is_subsequence(&Sequence::empty(), &Sequence::empty()));
        assert!(is_subsequence(
            &Sequence::empty(),
            &Sequence::from_ids([1, 2])
        ));
    }

    #[test]
    fn nonempty_not_in_empty() {
        assert!(!is_subsequence(
            &Sequence::from_ids([1]),
            &Sequence::empty()
        ));
    }

    #[test]
    fn reflexive_and_order_sensitive() {
        let s = Sequence::from_ids([1, 2, 3]);
        assert!(is_subsequence(&s, &s));
        assert!(is_subsequence(&Sequence::from_ids([1, 3]), &s));
        assert!(!is_subsequence(&Sequence::from_ids([3, 1]), &s));
    }

    #[test]
    fn multiplicity_matters() {
        let v = Sequence::from_ids([1, 2]);
        assert!(!is_subsequence(&Sequence::from_ids([1, 1]), &v));
        assert!(is_subsequence(
            &Sequence::from_ids([1, 1]),
            &Sequence::from_ids([1, 2, 1])
        ));
    }

    #[test]
    fn marks_break_containment() {
        let mut v = Sequence::from_ids([1, 2, 3]);
        let u = Sequence::from_ids([2]);
        assert!(is_subsequence(&u, &v));
        v.mark(1);
        assert!(!is_subsequence(&u, &v));
        // a pattern containing a mark matches nothing
        let mut w = Sequence::from_ids([1]);
        w.mark(0);
        assert!(!is_subsequence(&w, &Sequence::from_ids([1])));
        assert!(!is_subsequence(
            &Sequence::new(vec![Symbol::MARK]),
            &Sequence::new(vec![Symbol::MARK])
        ));
    }
}
