//! # seqhide-match
//!
//! The subsequence-matching engine of *Hiding Sequences* (ICDE 2007):
//! everything the sanitization algorithms need to reason about *where and
//! how often* sensitive patterns embed into database sequences.
//!
//! ## Concepts (paper §3 and §5)
//!
//! An *embedding* (the paper says *matching*) of a pattern
//! `S = ⟨s₁,…,s_m⟩` into a sequence `T = ⟨t₁,…,t_n⟩` is a strictly
//! increasing index tuple `i₁ < … < i_m` with `s_k = t_{i_k}` for all `k`.
//! The *matching set* `M_S^T` is the set of all embeddings (Definition 1);
//! its size is worst-case exponential (Lemma 1), but its *cardinality* is
//! computable by dynamic programming in `O(nm)` (Lemma 2), as are the
//! prefix-ending counts `P_k^j` (Lemma 3) and their gap-constrained
//! counterparts `Q_k^j` (Lemma 4) and window-constrained counts (Lemma 5).
//!
//! `δ(T[i])` — the number of embeddings passing through position `i`, the
//! quantity the paper's local heuristic maximises — is computed by three
//! interchangeable methods in [`delta`]:
//!
//! * the paper's **deletion** device (Theorem 2), valid without constraints;
//! * a **marking** device (count with `T[i]` temporarily marked), valid for
//!   *all* constraints because marking preserves indices;
//! * an **`O(nm)` forward–backward** pass (the "Efficiency" extension the
//!   paper's §8 calls for), valid for unconstrained and gap-constrained
//!   patterns.
//!
//! All counting is generic over [`seqhide_num::Count`], so callers choose
//! exact ([`BigCount`](seqhide_num::BigCount)) or saturating
//! ([`Sat64`](seqhide_num::Sat64)) arithmetic.
//!
//! ## Index convention
//!
//! The paper writes 1-based positions (`T[1]` is the first element). This
//! crate is **0-based** everywhere; documentation restates paper examples in
//! 0-based form where they appear.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod counting;
pub mod delta;
pub mod domain;
pub mod engine;
pub mod enumerate;
pub mod itemset;
pub mod pattern;
pub mod subsequence;
pub mod support;

pub use constraints::{ConstraintSet, Gap};
pub use counting::{
    count_embeddings, count_matches, ending_at_table_bounded_by, ending_at_table_bounded_into,
    matching_size,
};
pub use delta::{delta_all, delta_by_deletion, delta_by_marking, delta_forward_backward};
pub use domain::{LocalStrategy, PatternDomain, ScratchDomain};
pub use engine::{EngineStats, ItemsetMatchEngine, MatchEngine};
pub use enumerate::{enumerate_embeddings, EnumerateConfig};
pub use pattern::{PatternError, SensitivePattern, SensitiveSet};
pub use subsequence::is_subsequence;
pub use support::{support, support_of_pattern, support_of_set, supporters, supports};
