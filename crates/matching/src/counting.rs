//! Embedding counting — Lemmas 2, 3, 4 and 5 of the paper.
//!
//! All counting is expressed over an abstract *match relation*
//! `matches(k, j)` ("pattern element `k` matches data element `j`"), so the
//! same dynamic programs serve plain symbol sequences (equality matching)
//! and itemset sequences (set-inclusion matching, §7.1).
//!
//! The DPs are generic over [`Count`], so callers pick exact
//! ([`BigCount`](seqhide_num::BigCount)) or saturating
//! ([`Sat64`](seqhide_num::Sat64)) arithmetic. Windowed sums inside the
//! constrained DP use prefix sums with [`Count::saturating_sub`]; because
//! prefix sums are monotone, the subtraction never actually saturates in
//! exact arithmetic.

use seqhide_num::Count;
use seqhide_types::{Sequence, Symbol};

use crate::constraints::{ConstraintSet, Gap};
use crate::pattern::{SensitivePattern, SensitiveSet};

/// Counts all embeddings of `s` into `t` **without constraints** — the
/// paper's Lemma 2, `O(nm)` time, `O(n)` space.
///
/// The recurrence (paper notation, 1-based): `P^{1..n}_{1..m} =
/// P^{1..n−1}_{1..m} + [S[m] = T[n]] · P^{1..n−1}_{1..m−1}`, with
/// `P^j_0 = 1` and `P^0_{i>0} = 0`.
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::count_embeddings;
/// // Paper Definition 1: S = ⟨a b c⟩, T = ⟨a a b c c b a e⟩ → |M| = 4.
/// let mut sigma = Alphabet::new();
/// let s = Sequence::parse("a b c", &mut sigma);
/// let t = Sequence::parse("a a b c c b a e", &mut sigma);
/// assert_eq!(count_embeddings::<u64>(&s, &t), 4);
/// ```
pub fn count_embeddings<C: Count>(s: &Sequence, t: &Sequence) -> C {
    count_embeddings_by(s.len(), t.len(), |k, j| s[k].matches(t[j]))
}

/// [`count_embeddings`] over an abstract match relation.
pub fn count_embeddings_by<C: Count>(
    m: usize,
    n: usize,
    matches: impl Fn(usize, usize) -> bool,
) -> C {
    if m == 0 {
        return C::one(); // the empty pattern has exactly one (empty) embedding
    }
    if m > n {
        return C::zero();
    }
    // row[k] = number of embeddings of the first k pattern elements into the
    // prefix of t processed so far; updated right-to-left per data element.
    let mut row: Vec<C> = vec![C::zero(); m + 1];
    row[0] = C::one();
    for j in 0..n {
        for k in (1..=m).rev() {
            if matches(k - 1, j) {
                let prev = row[k - 1].clone();
                row[k].add_assign(&prev);
            }
        }
    }
    row[m].clone()
}

/// The *ending-exactly-at* table of Lemma 3 / Lemma 4: `table[k][j]` is the
/// number of (gap-constrained) embeddings of the pattern prefix of length
/// `k+1` whose last element is matched **exactly** at data position `j`
/// (0-based; the paper's `P_k^j` / `Q_k^j` with 1-based indices).
///
/// Gap constraints are read from `cs`; the max-window constraint is *not*
/// applied here (it is global — see [`count_matches`]). Runs in `O(nm)`
/// using prefix sums, improving on the paper's `O(n²m)` bound.
pub fn ending_at_table<C: Count>(s: &Sequence, t: &[Symbol], cs: &ConstraintSet) -> Vec<Vec<C>> {
    ending_at_table_by(s.len(), t.len(), |k, j| s[k].matches(t[j]), cs)
}

/// [`ending_at_table`] over an abstract match relation.
pub fn ending_at_table_by<C: Count>(
    m: usize,
    n: usize,
    matches: impl Fn(usize, usize) -> bool,
    cs: &ConstraintSet,
) -> Vec<Vec<C>> {
    let arrows = m.saturating_sub(1);
    ending_at_table_bounded_by(m, n, matches, |k, j| {
        // previous element at l with gap j − l − 1 ∈ [min, max]
        // ⇒ l ∈ [j − 1 − max, j − 1 − min]
        let gap = cs.gap(k, arrows);
        if j < 1 + gap.min {
            return None;
        }
        let hi = j - 1 - gap.min;
        let lo = match gap.max {
            Some(max) => (j - 1).saturating_sub(max),
            None => 0,
        };
        Some((lo, hi))
    })
}

/// The fully general ending-exactly-at table: `prev_range(k, j)` yields the
/// inclusive index range in which the match of pattern element `k` may sit
/// when element `k + 1` is matched at data position `j` (`None` = no
/// admissible predecessor). Index-gap constraints (Lemma 4) and real-time
/// gap constraints (§7.2 — ranges computed from time tags, which are sorted
/// and therefore still yield contiguous index ranges) are both instances.
///
/// The returned range is additionally clipped to `[0, j − 1]` — a
/// predecessor can never sit at or after its successor.
pub fn ending_at_table_bounded_by<C: Count>(
    m: usize,
    n: usize,
    matches: impl Fn(usize, usize) -> bool,
    prev_range: impl Fn(usize, usize) -> Option<(usize, usize)>,
) -> Vec<Vec<C>> {
    let mut table: Vec<Vec<C>> = Vec::with_capacity(m);
    for k in 0..m {
        let mut row = vec![C::zero(); n];
        if k == 0 {
            for (j, cell) in row.iter_mut().enumerate() {
                if matches(0, j) {
                    *cell = C::one();
                }
            }
        } else {
            // prefix[j] = Σ_{l < j} table[k-1][l], with a leading 0 so
            // `prefix[hi+1] − prefix[lo]` is the sum over l ∈ [lo, hi].
            let prev = &table[k - 1];
            let mut prefix: Vec<C> = Vec::with_capacity(n + 1);
            prefix.push(C::zero());
            for l in 0..n {
                let next = prefix[l].add(&prev[l]);
                prefix.push(next);
            }
            for (j, cell) in row.iter_mut().enumerate() {
                if !matches(k, j) {
                    continue;
                }
                let Some((lo, hi)) = prev_range(k - 1, j) else {
                    continue;
                };
                if j == 0 {
                    continue;
                }
                let hi = hi.min(j - 1);
                if lo > hi {
                    continue;
                }
                // prefix sums are monotone, so the saturating subtraction
                // is exact.
                *cell = prefix[hi + 1].saturating_sub(&prefix[lo]);
            }
        }
        table.push(row);
    }
    table
}

/// Buffer-reusing variant of [`ending_at_table_bounded_by`]: fills `table`
/// (flattened row-major, `m × n`, resized in place) using `prefix` as the
/// per-row prefix-sum scratch (`n + 1` entries). Callers that evaluate the
/// table in a loop — e.g. the per-end-position windowed DPs of the
/// spatiotemporal and real-time extensions — hoist both buffers out of the
/// loop and pay zero allocations per evaluation after warm-up.
///
/// `table[k * n + j]` equals `ending_at_table_bounded_by(..)[k][j]`.
pub fn ending_at_table_bounded_into<C: Count>(
    m: usize,
    n: usize,
    matches: impl Fn(usize, usize) -> bool,
    prev_range: impl Fn(usize, usize) -> Option<(usize, usize)>,
    table: &mut Vec<C>,
    prefix: &mut Vec<C>,
) {
    table.clear();
    table.resize(m * n, C::zero());
    for k in 0..m {
        let row = k * n;
        if k == 0 {
            for j in 0..n {
                if matches(0, j) {
                    table[row + j] = C::one();
                }
            }
        } else {
            let prev = row - n;
            prefix.clear();
            prefix.push(C::zero());
            for l in 0..n {
                let next = prefix[l].add(&table[prev + l]);
                prefix.push(next);
            }
            for j in 0..n {
                if !matches(k, j) {
                    continue;
                }
                let Some((lo, hi)) = prev_range(k - 1, j) else {
                    continue;
                };
                if j == 0 {
                    continue;
                }
                let hi = hi.min(j - 1);
                if lo > hi {
                    continue;
                }
                // prefix sums are monotone, so the saturating subtraction
                // is exact.
                table[row + j] = prefix[hi + 1].saturating_sub(&prefix[lo]);
            }
        }
    }
}

/// Counts occurrences of a constrained sensitive pattern in `t` —
/// dispatching to the cheapest applicable DP:
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::{count_matches, ConstraintSet, Gap, SensitivePattern};
/// let mut sigma = Alphabet::new();
/// let s = Sequence::parse("a c", &mut sigma);
/// let t = Sequence::parse("a b c c", &mut sigma);
/// let loose = SensitivePattern::unconstrained(s.clone()).unwrap();
/// assert_eq!(count_matches::<u64>(&loose, &t), 2);
/// let adjacent = SensitivePattern::new(s, ConstraintSet::uniform_gap(Gap::adjacent())).unwrap();
/// assert_eq!(count_matches::<u64>(&adjacent, &t), 0);
/// ```
///
/// * unconstrained → Lemma 2 row DP;
/// * gap constraints only → Lemma 4 table, summing the last row;
/// * max window (± gaps) → Lemma 5: for every end position `j`, count
///   (gap-constrained) embeddings of `S` inside the slice
///   `T[j−Ws+1 ..= j]` that end exactly at `j`.
pub fn count_matches<C: Count>(p: &SensitivePattern, t: &Sequence) -> C {
    count_matches_by(p, t.len(), |k, j| p.seq()[k].matches(t[j]))
}

/// [`count_matches`] over an abstract match relation (`n` data elements).
pub fn count_matches_by<C: Count>(
    p: &SensitivePattern,
    n: usize,
    matches: impl Fn(usize, usize) -> bool,
) -> C {
    let m = p.len();
    let cs = p.constraints();
    match cs.max_window {
        None if !cs.has_gaps() => count_embeddings_by(m, n, matches),
        None => {
            let table = ending_at_table_by::<C>(m, n, matches, cs);
            let mut total = C::zero();
            for cell in &table[m - 1] {
                total.add_assign(cell);
            }
            total
        }
        Some(ws) => {
            // Lemma 5: anchor on the end position j; the first matched
            // index must lie in [j − Ws + 1, j], i.e. the whole occurrence
            // fits in the slice [lo, j] of length ≤ Ws.
            let mut total = C::zero();
            for j in 0..n {
                if !matches(m - 1, j) {
                    continue;
                }
                let lo = (j + 1).saturating_sub(ws);
                let len = j - lo + 1;
                if len < m {
                    continue;
                }
                let table = ending_at_table_by::<C>(m, len, |k, jj| matches(k, lo + jj), cs);
                total.add_assign(&table[m - 1][len - 1]);
            }
            total
        }
    }
}

/// The size of the combined matching set `|M_{S_h}^T| = Σ_S |M_S^T|`
/// (Definition 1's union is disjoint across distinct patterns because an
/// embedding is tagged by its pattern; the paper sums sizes the same way).
pub fn matching_size<C: Count>(sh: &SensitiveSet, t: &Sequence) -> C {
    let mut total = C::zero();
    for p in sh {
        total.add_assign(&count_matches::<C>(p, t));
    }
    total
}

/// Convenience: the uniform-gap constraint set used throughout the
/// constraint experiments, `→_mg^Mg` on every arrow.
pub fn uniform_gaps(min: usize, max: Option<usize>) -> ConstraintSet {
    ConstraintSet::uniform_gap(Gap { min, max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqhide_num::{BigCount, Sat64};
    use seqhide_types::Alphabet;

    fn seqs(s: &str, t: &str) -> (Sequence, Sequence) {
        let mut sigma = Alphabet::new();
        (
            Sequence::parse(s, &mut sigma),
            Sequence::parse(t, &mut sigma),
        )
    }

    fn pat(s: &Sequence, cs: ConstraintSet) -> SensitivePattern {
        SensitivePattern::new(s.clone(), cs).unwrap()
    }

    #[test]
    fn paper_definition1_example() {
        // S = ⟨a b c⟩, T = ⟨a a b c c b a e⟩: M = {(1,3,4),(1,3,5),(2,3,4),(2,3,5)}
        // in the paper's 1-based indices — 4 embeddings.
        let (s, t) = seqs("a b c", "a a b c c b a e");
        assert_eq!(count_embeddings::<u64>(&s, &t), 4);
        assert_eq!(count_embeddings::<Sat64>(&s, &t), Sat64::new(4));
        assert_eq!(count_embeddings::<BigCount>(&s, &t), BigCount::from_u64(4));
    }

    #[test]
    fn empty_pattern_has_one_embedding() {
        let (_, t) = seqs("a", "a b c");
        assert_eq!(count_embeddings::<u64>(&Sequence::empty(), &t), 1);
        assert_eq!(
            count_embeddings::<u64>(&Sequence::empty(), &Sequence::empty()),
            1
        );
    }

    #[test]
    fn pattern_longer_than_sequence() {
        let (s, t) = seqs("a b c", "a b");
        assert_eq!(count_embeddings::<u64>(&s, &t), 0);
    }

    #[test]
    fn no_occurrence_counts_zero() {
        let (s, t) = seqs("a b", "b b a");
        assert_eq!(count_embeddings::<u64>(&s, &t), 0);
    }

    #[test]
    fn unary_alphabet_is_binomial() {
        // S = aⁿ/², T = aⁿ ⇒ C(n, n/2) — Lemma 1's worst case.
        let s = Sequence::from_ids(vec![0; 4]);
        let t = Sequence::from_ids(vec![0; 8]);
        assert_eq!(count_embeddings::<u64>(&s, &t), 70); // C(8,4)
    }

    #[test]
    fn huge_counts_exact_in_bigcount() {
        // C(140, 70) ≈ 9.4e40 > u64::MAX but fits BigCount exactly.
        let s = Sequence::from_ids(vec![0; 70]);
        let t = Sequence::from_ids(vec![0; 140]);
        let exact = count_embeddings::<BigCount>(&s, &t);
        assert_eq!(
            exact.to_string(),
            "93820969697840041204785894580506297666600"
        );
        // Sat64 saturates but stays a usable lower bound.
        let sat = count_embeddings::<Sat64>(&s, &t);
        assert!(sat.is_saturated());
    }

    #[test]
    fn marks_never_match() {
        let (s, mut t) = seqs("a b", "a b a b");
        assert_eq!(count_embeddings::<u64>(&s, &t), 3);
        t.mark(1); // ⟨a Δ a b⟩: embeddings of ab = (0,3),(2,3)
        assert_eq!(count_embeddings::<u64>(&s, &t), 2);
    }

    #[test]
    fn ending_at_matches_paper_example3() {
        // P_2^3 = 2: the length-2 prefix ⟨a b⟩ has 2 embeddings ending
        // exactly at T[3] (1-based) = index 2 (0-based).
        let (s, t) = seqs("a b c", "a a b c c b a e");
        let table = ending_at_table::<u64>(&s, t.symbols(), &ConstraintSet::none());
        assert_eq!(table[1][2], 2);
        // Full-row sum equals the Lemma 2 count.
        let total: u64 = table[2].iter().sum();
        assert_eq!(total, 4);
        // Per-position detail: abc embeddings end at T[4]=c (2 of them) and
        // T[5]=c (2 of them) in 1-based terms → indices 3 and 4.
        assert_eq!(table[2][3], 2);
        assert_eq!(table[2][4], 2);
    }

    #[test]
    fn paper_gap_example_kills_all_occurrences() {
        // a →⁰ b →₂⁶ c has no occurrence in ⟨a a b c c b a e⟩ (§5).
        let (s, t) = seqs("a b c", "a a b c c b a e");
        let cs = ConstraintSet::with_gaps(vec![Gap::adjacent(), Gap::bounded(2, 6)]);
        let p = pat(&s, cs);
        assert_eq!(count_matches::<u64>(&p, &t), 0);
    }

    #[test]
    fn gap_constraints_filter_correctly() {
        // S = ⟨a c⟩ in T = ⟨a b c c⟩; embeddings (0,2) gap 1, (0,3) gap 2.
        let (s, t) = seqs("a c", "a b c c");
        let any = pat(&s, ConstraintSet::none());
        assert_eq!(count_matches::<u64>(&any, &t), 2);
        let tight = pat(&s, ConstraintSet::uniform_gap(Gap::bounded(0, 1)));
        assert_eq!(count_matches::<u64>(&tight, &t), 1);
        let min2 = pat(&s, ConstraintSet::uniform_gap(Gap { min: 2, max: None }));
        assert_eq!(count_matches::<u64>(&min2, &t), 1);
        let min3 = pat(&s, ConstraintSet::uniform_gap(Gap { min: 3, max: None }));
        assert_eq!(count_matches::<u64>(&min3, &t), 0);
    }

    #[test]
    fn window_constraint_counts_spans() {
        // S = ⟨a b⟩ in T = ⟨a x x b a b⟩ (x distinct):
        // embeddings (0,3) span 4, (0,5) span 6, (4,5) span 2.
        let (s, t) = seqs("a b", "a x x b a b");
        assert_eq!(count_matches::<u64>(&pat(&s, ConstraintSet::none()), &t), 3);
        assert_eq!(
            count_matches::<u64>(&pat(&s, ConstraintSet::with_max_window(2)), &t),
            1
        );
        assert_eq!(
            count_matches::<u64>(&pat(&s, ConstraintSet::with_max_window(4)), &t),
            2
        );
        assert_eq!(
            count_matches::<u64>(&pat(&s, ConstraintSet::with_max_window(6)), &t),
            3
        );
    }

    #[test]
    fn window_and_gaps_combine() {
        // S = ⟨a b⟩ in T = ⟨a a x b⟩: embeddings (0,3) gap 2 span 4,
        // (1,3) gap 1 span 3.
        let (s, t) = seqs("a b", "a a x b");
        let cs = ConstraintSet::uniform_gap(Gap { min: 2, max: None }).and_max_window(4);
        assert_eq!(count_matches::<u64>(&pat(&s, cs), &t), 1);
        let cs2 = ConstraintSet::uniform_gap(Gap { min: 2, max: None }).and_max_window(3);
        assert_eq!(count_matches::<u64>(&pat(&s, cs2), &t), 0);
    }

    #[test]
    fn bounded_into_matches_allocating_variant() {
        let (s, t) = seqs("a b c", "a a b c c b a e");
        let (m, n) = (s.len(), t.len());
        let cs = ConstraintSet::uniform_gap(Gap::bounded(0, 2));
        let arrows = m - 1;
        let prev_range = |k: usize, j: usize| {
            let gap = cs.gap(k, arrows);
            if j < 1 + gap.min {
                return None;
            }
            Some((
                match gap.max {
                    Some(max) => (j - 1).saturating_sub(max),
                    None => 0,
                },
                j - 1 - gap.min,
            ))
        };
        let nested = ending_at_table_bounded_by::<u64>(m, n, |k, j| s[k].matches(t[j]), prev_range);
        let mut flat = Vec::new();
        let mut scratch = Vec::new();
        // run twice through the same buffers: reuse must not leak state
        for _ in 0..2 {
            ending_at_table_bounded_into::<u64>(
                m,
                n,
                |k, j| s[k].matches(t[j]),
                prev_range,
                &mut flat,
                &mut scratch,
            );
            for k in 0..m {
                assert_eq!(&flat[k * n..(k + 1) * n], nested[k].as_slice());
            }
        }
    }

    #[test]
    fn matching_size_sums_patterns() {
        let mut sigma = Alphabet::new();
        let t = Sequence::parse("a b a b", &mut sigma);
        let s1 = Sequence::parse("a b", &mut sigma); // 3 embeddings
        let s2 = Sequence::parse("b a", &mut sigma); // 1 embedding
        let sh = SensitiveSet::new(vec![s1, s2]);
        assert_eq!(matching_size::<u64>(&sh, &t), 4);
    }

    #[test]
    fn single_symbol_pattern() {
        let (s, t) = seqs("a", "a b a a");
        assert_eq!(count_embeddings::<u64>(&s, &t), 3);
        // windows of size ≥ 1 don't restrict single symbols
        let p = pat(&s, ConstraintSet::with_max_window(1));
        assert_eq!(count_matches::<u64>(&p, &t), 3);
    }
}
