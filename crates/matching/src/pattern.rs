//! Sensitive patterns and the sensitive set `S_h`.

use std::fmt;

use seqhide_types::{Alphabet, Sequence};

use crate::constraints::ConstraintSet;

/// Errors raised when constructing sensitive patterns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PatternError {
    /// The pattern sequence is empty — the empty pattern embeds in every
    /// sequence (including the empty one) and can never be hidden.
    Empty,
    /// The pattern contains the mark `Δ`, which is not part of `Σ`.
    ContainsMark,
    /// The constraint set does not fit the pattern (wrong arrow count, or a
    /// window smaller than the pattern itself).
    BadConstraints(String),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "sensitive pattern must be non-empty"),
            PatternError::ContainsMark => {
                write!(f, "sensitive pattern cannot contain the mark Δ")
            }
            PatternError::BadConstraints(msg) => write!(f, "invalid constraints: {msg}"),
        }
    }
}

impl std::error::Error for PatternError {}

/// One sensitive pattern `S ∈ S_h`: a non-empty, mark-free sequence plus the
/// occurrence constraints (§5) under which it counts as disclosed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SensitivePattern {
    seq: Sequence,
    constraints: ConstraintSet,
}

impl SensitivePattern {
    /// Creates a constrained sensitive pattern.
    pub fn new(seq: Sequence, constraints: ConstraintSet) -> Result<Self, PatternError> {
        if seq.is_empty() {
            return Err(PatternError::Empty);
        }
        if seq.iter().any(|s| s.is_mark()) {
            return Err(PatternError::ContainsMark);
        }
        constraints
            .validate(seq.len())
            .map_err(PatternError::BadConstraints)?;
        Ok(SensitivePattern { seq, constraints })
    }

    /// Creates an unconstrained sensitive pattern.
    pub fn unconstrained(seq: Sequence) -> Result<Self, PatternError> {
        Self::new(seq, ConstraintSet::none())
    }

    /// The pattern sequence.
    pub fn seq(&self) -> &Sequence {
        &self.seq
    }

    /// The occurrence constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Pattern length `m`.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Always `false` (validated non-empty); present for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders with names from `alphabet`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        if self.constraints.is_none() {
            self.seq.render(alphabet)
        } else {
            format!("{} ({})", self.seq.render(alphabet), self.constraints)
        }
    }
}

/// The set `S_h` of sensitive patterns to hide.
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::SensitiveSet;
///
/// let mut sigma = Alphabet::new();
/// let s1 = Sequence::parse("X6Y3 X7Y2", &mut sigma);
/// let s2 = Sequence::parse("X4Y3 X5Y3", &mut sigma);
/// let sh = SensitiveSet::new(vec![s1, s2]);
/// assert_eq!(sh.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SensitiveSet {
    patterns: Vec<SensitivePattern>,
}

impl SensitiveSet {
    /// Builds a sensitive set of **unconstrained** patterns.
    ///
    /// # Panics
    /// Panics if any pattern is empty or contains the mark; use
    /// [`SensitiveSet::try_new`] for fallible construction.
    pub fn new(patterns: Vec<Sequence>) -> Self {
        Self::try_new(patterns).expect("invalid sensitive pattern")
    }

    /// Fallible counterpart of [`SensitiveSet::new`].
    pub fn try_new(patterns: Vec<Sequence>) -> Result<Self, PatternError> {
        let patterns = patterns
            .into_iter()
            .map(SensitivePattern::unconstrained)
            .collect::<Result<_, _>>()?;
        Ok(SensitiveSet { patterns })
    }

    /// Builds from already-constrained patterns.
    pub fn from_patterns(patterns: Vec<SensitivePattern>) -> Self {
        SensitiveSet { patterns }
    }

    /// Applies the same constraint set to every pattern (used by the
    /// constraint-sweep experiments, Figure 1(g–i)).
    pub fn with_constraints(&self, constraints: &ConstraintSet) -> Result<Self, PatternError> {
        let patterns = self
            .patterns
            .iter()
            .map(|p| SensitivePattern::new(p.seq.clone(), constraints.clone()))
            .collect::<Result<_, _>>()?;
        Ok(SensitiveSet { patterns })
    }

    /// Number of sensitive patterns `|S_h|`.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty (nothing to hide).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The patterns.
    pub fn patterns(&self) -> &[SensitivePattern] {
        &self.patterns
    }

    /// Iterates over the patterns.
    pub fn iter(&self) -> std::slice::Iter<'_, SensitivePattern> {
        self.patterns.iter()
    }
}

impl<'a> IntoIterator for &'a SensitiveSet {
    type Item = &'a SensitivePattern;
    type IntoIter = std::slice::Iter<'a, SensitivePattern>;
    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Gap;
    use seqhide_types::Symbol;

    #[test]
    fn rejects_empty_pattern() {
        assert_eq!(
            SensitivePattern::unconstrained(Sequence::empty()).unwrap_err(),
            PatternError::Empty
        );
    }

    #[test]
    fn rejects_marked_pattern() {
        let mut s = Sequence::from_ids([1, 2]);
        s.mark(0);
        assert_eq!(
            SensitivePattern::unconstrained(s).unwrap_err(),
            PatternError::ContainsMark
        );
    }

    #[test]
    fn rejects_bad_constraint_arity() {
        let s = Sequence::from_ids([1, 2, 3]);
        let cs = ConstraintSet::with_gaps(vec![Gap::any(), Gap::any(), Gap::any()]);
        assert!(matches!(
            SensitivePattern::new(s, cs).unwrap_err(),
            PatternError::BadConstraints(_)
        ));
    }

    #[test]
    fn set_construction_and_iteration() {
        let sh = SensitiveSet::new(vec![Sequence::from_ids([1, 2]), Sequence::from_ids([3])]);
        assert_eq!(sh.len(), 2);
        assert!(!sh.is_empty());
        let lens: Vec<usize> = sh.iter().map(SensitivePattern::len).collect();
        assert_eq!(lens, vec![2, 1]);
    }

    #[test]
    fn with_constraints_rewrites_all() {
        let sh = SensitiveSet::new(vec![Sequence::from_ids([1, 2]), Sequence::from_ids([3, 4])]);
        let cs = ConstraintSet::with_max_window(5);
        let constrained = sh.with_constraints(&cs).unwrap();
        assert!(constrained
            .iter()
            .all(|p| p.constraints().max_window == Some(5)));
        // a window too small for some pattern propagates the error
        let too_small = ConstraintSet::with_max_window(1);
        assert!(sh.with_constraints(&too_small).is_err());
    }

    #[test]
    fn render_includes_constraints() {
        let mut sigma = Alphabet::new();
        let seq = Sequence::parse("a b", &mut sigma);
        let p = SensitivePattern::new(seq, ConstraintSet::with_max_window(4)).unwrap();
        assert_eq!(p.render(&sigma), "⟨a b⟩ (window≤4)");
        assert!(!p.is_empty());
        assert_eq!(p.seq()[0], Symbol::new(0));
    }

    #[test]
    fn error_display() {
        assert!(PatternError::Empty.to_string().contains("non-empty"));
        assert!(PatternError::ContainsMark.to_string().contains("Δ"));
    }
}
