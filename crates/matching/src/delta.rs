//! `δ(T[i])` — how many matchings pass through each position (Theorem 2).
//!
//! The paper's local heuristic marks the position with the largest
//! `δ(T[i])`. Three interchangeable computations are provided:
//!
//! * [`delta_by_deletion`] — the paper's device: `δ(T[i]) = |M^T| −
//!   |M^{T∖i}|` where `T∖i` *deletes* the `i`-th element (Theorem 2).
//!   Deletion shifts later indices, so this is only sound without
//!   gap/window constraints; the function rejects constrained patterns.
//! * [`delta_by_marking`] — counts with `T[i]` temporarily **marked**
//!   instead of deleted. Marking preserves indices, so this is sound under
//!   every constraint, at the same `O(n · cost(count))` price.
//! * [`delta_forward_backward`] — the efficient method (§8 "Efficiency"):
//!   one forward and one backward ending-exactly-at table give all `δ`
//!   values in `O(nm)` for unconstrained and gap-constrained patterns (the
//!   max-window constraint couples an occurrence's two ends and does not
//!   factor; such patterns fall back to marking inside [`delta_all`]).
//!
//! Property tests (`tests/` of this crate and the workspace integration
//! suite) assert all three agree wherever their domains overlap, and agree
//! with brute-force enumeration.

use seqhide_num::Count;
use seqhide_types::{Sequence, Symbol};

use crate::counting::{count_matches, ending_at_table, matching_size};
use crate::pattern::{SensitivePattern, SensitiveSet};

/// `δ` for every position of `t` by the paper's deletion device.
///
/// # Panics
/// Panics if any pattern in `sh` carries constraints (deletion shifts
/// indices and would mis-evaluate gaps/windows).
pub fn delta_by_deletion<C: Count>(sh: &SensitiveSet, t: &Sequence) -> Vec<C> {
    assert!(
        sh.iter().all(|p| p.constraints().is_none()),
        "deletion-based δ is only sound for unconstrained patterns; \
         use delta_by_marking or delta_all"
    );
    let total = matching_size::<C>(sh, t);
    (0..t.len())
        .map(|i| {
            let reduced = matching_size::<C>(sh, &t.without_index(i));
            total.saturating_sub(&reduced)
        })
        .collect()
}

/// `δ` for every position of `t` by temporary marking — sound under all
/// constraints.
pub fn delta_by_marking<C: Count>(sh: &SensitiveSet, t: &Sequence) -> Vec<C> {
    let total = matching_size::<C>(sh, t);
    let mut work = t.clone();
    (0..t.len())
        .map(|i| {
            if work[i].is_mark() {
                return C::zero(); // already-marked positions join no matching
            }
            let saved = work.mark(i);
            let reduced = matching_size::<C>(sh, &work);
            work.set(i, saved);
            total.saturating_sub(&reduced)
        })
        .collect()
}

/// `δ` for every position of `t` for **one** pattern via forward–backward
/// tables, `O(nm)`.
///
/// Let `fwd[k][j]` be the number of gap-constrained embeddings of the
/// prefix `S[0..=k]` ending exactly at `j`, and `bwd[k][j]` the number of
/// embeddings of the suffix `S[k..]` starting exactly at `j`. An embedding
/// with `i_k = j` splits uniquely into such a prefix and suffix, so
///
/// ```text
/// δ(T[j]) = Σ_k fwd[k][j] · W[k][j]
/// ```
///
/// where `W[k][j]` extends the prefix by a suffix of `S[k+1..]` whose first
/// position respects arrow `k`'s gap — exactly `bwd[k][j]`'s inner sum, so
/// `fwd[k][j] · bwd[k][j] = fwd[k][j] · W[k][j]` whenever `S[k]` matches
/// `T[j]` (both tables carry the same match indicator).
///
/// # Panics
/// Panics if the pattern has a max-window constraint.
pub fn delta_forward_backward<C: Count>(p: &SensitivePattern, t: &Sequence) -> Vec<C> {
    assert!(
        p.constraints().max_window.is_none(),
        "forward-backward δ does not support the max-window constraint; \
         use delta_by_marking or delta_all"
    );
    let m = p.len();
    let n = t.len();
    let cs = p.constraints();
    let fwd = ending_at_table::<C>(p.seq(), t.symbols(), cs);
    // Backward table via the same DP on the reversed pattern and sequence
    // with reversed arrow constraints: an embedding of S[k..] starting at j
    // in T is an embedding of reverse(S[k..]) ending at n−1−j in reverse(T).
    let rev_seq: Sequence = p.seq().iter().rev().copied().collect();
    let rev_t: Vec<Symbol> = t.iter().rev().copied().collect();
    let rev_cs = crate::constraints::ConstraintSet {
        gaps: {
            let arrows = m.saturating_sub(1);
            (0..arrows).rev().map(|k| cs.gap(k, arrows)).collect()
        },
        max_window: None,
    };
    let rev_pattern = SensitivePattern::new(rev_seq, rev_cs).expect("reversal preserves validity");
    let bwd_rev = ending_at_table::<C>(rev_pattern.seq(), &rev_t, rev_pattern.constraints());
    // bwd[k][j] = bwd_rev[m−1−k][n−1−j]
    let mut delta = vec![C::zero(); n];
    for (j, d) in delta.iter_mut().enumerate() {
        for (k, fwd_row) in fwd.iter().enumerate() {
            let f = &fwd_row[j];
            if f.is_zero() {
                continue;
            }
            let b = &bwd_rev[m - 1 - k][n - 1 - j];
            if b.is_zero() {
                continue;
            }
            d.add_assign(&f.mul(b));
        }
    }
    delta
}

/// Production `δ` for a whole sensitive set: forward–backward where legal,
/// marking where the max-window constraint forces it. Returns the
/// per-position sums across all patterns.
///
/// ```
/// use seqhide_types::{Alphabet, Sequence};
/// use seqhide_match::{delta_all, SensitiveSet};
/// // Paper Example 2: δ(T[1])=2, δ(T[2])=2, δ(T[3])=4 (1-based)
/// let mut sigma = Alphabet::new();
/// let s = Sequence::parse("a b c", &mut sigma);
/// let t = Sequence::parse("a a b c c b a e", &mut sigma);
/// let sh = SensitiveSet::new(vec![s]);
/// assert_eq!(delta_all::<u64>(&sh, &t), vec![2, 2, 4, 2, 2, 0, 0, 0]);
/// ```
pub fn delta_all<C: Count>(sh: &SensitiveSet, t: &Sequence) -> Vec<C> {
    let n = t.len();
    let mut total = vec![C::zero(); n];
    for p in sh {
        let per_pattern: Vec<C> = if p.constraints().max_window.is_none() {
            delta_forward_backward::<C>(p, t)
        } else {
            let single = SensitiveSet::from_patterns(vec![p.clone()]);
            delta_by_marking::<C>(&single, t)
        };
        for (acc, d) in total.iter_mut().zip(per_pattern) {
            acc.add_assign(&d);
        }
    }
    total
}

/// The largest-`δ` position (ties break to the smallest index), or `None`
/// if every `δ` is zero — i.e. `M_{S_h}^T = ∅` and `t` is already clean.
pub fn argmax_delta<C: Count>(delta: &[C]) -> Option<usize> {
    let mut best: Option<(usize, &C)> = None;
    for (i, d) in delta.iter().enumerate() {
        if d.is_zero() {
            continue;
        }
        match best {
            Some((_, b)) if d <= b => {}
            _ => best = Some((i, d)),
        }
    }
    best.map(|(i, _)| i)
}

/// Total residual matching count for a set (convenience wrapper used by the
/// sanitization loop's termination test).
pub fn total_matches<C: Count>(sh: &SensitiveSet, t: &Sequence) -> C {
    let mut c = C::zero();
    for p in sh {
        c.add_assign(&count_matches::<C>(p, t));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintSet, Gap};
    use crate::enumerate::{enumerate_embeddings, EnumerateConfig};
    use seqhide_num::BigCount;
    use seqhide_types::Alphabet;

    fn paper_setup() -> (SensitiveSet, Sequence) {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b c", &mut sigma);
        let t = Sequence::parse("a a b c c b a e", &mut sigma);
        (SensitiveSet::new(vec![s]), t)
    }

    #[test]
    fn paper_example2_deltas_all_methods() {
        let (sh, t) = paper_setup();
        let expect: Vec<u64> = vec![2, 2, 4, 2, 2, 0, 0, 0];
        assert_eq!(delta_by_deletion::<u64>(&sh, &t), expect);
        assert_eq!(delta_by_marking::<u64>(&sh, &t), expect);
        assert_eq!(delta_all::<u64>(&sh, &t), expect);
        let fb = delta_forward_backward::<u64>(&sh.patterns()[0], &t);
        assert_eq!(fb, expect);
    }

    #[test]
    fn argmax_matches_paper_choice() {
        let (sh, t) = paper_setup();
        let d = delta_all::<u64>(&sh, &t);
        // paper marks T[3] (1-based) = index 2: the b involved in all 4
        assert_eq!(argmax_delta(&d), Some(2));
    }

    #[test]
    fn argmax_breaks_ties_low_and_skips_zero() {
        assert_eq!(argmax_delta::<u64>(&[0, 3, 1, 3]), Some(1));
        assert_eq!(argmax_delta::<u64>(&[0, 0, 0]), None);
        assert_eq!(argmax_delta::<u64>(&[]), None);
    }

    #[test]
    fn marking_yields_zero_on_marked_positions() {
        let (sh, mut t) = paper_setup();
        t.mark(2);
        let d = delta_by_marking::<u64>(&sh, &t);
        assert_eq!(d, vec![0; 8]); // marking T[2] killed every embedding
    }

    #[test]
    fn delta_with_gap_constraints_matches_enumeration() {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b", &mut sigma);
        let t = Sequence::parse("a a x b x b", &mut sigma);
        let cs = ConstraintSet::uniform_gap(Gap::bounded(1, 3));
        let p = SensitivePattern::new(s, cs).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p.clone()]);
        let brute = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        let fb = delta_forward_backward::<u64>(&p, &t);
        let mk = delta_by_marking::<u64>(&sh, &t);
        for i in 0..t.len() {
            assert_eq!(fb[i] as usize, brute.delta(i), "fb at {i}");
            assert_eq!(mk[i] as usize, brute.delta(i), "marking at {i}");
        }
    }

    #[test]
    fn delta_with_window_matches_enumeration() {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b", &mut sigma);
        let t = Sequence::parse("a x b a b", &mut sigma);
        let p = SensitivePattern::new(s, ConstraintSet::with_max_window(3)).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p.clone()]);
        let brute = enumerate_embeddings(&p, &t, EnumerateConfig::default());
        let d = delta_all::<u64>(&sh, &t);
        for (i, di) in d.iter().enumerate() {
            assert_eq!(*di as usize, brute.delta(i), "delta_all at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "only sound for unconstrained")]
    fn deletion_rejects_constraints() {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b", &mut sigma);
        let p = SensitivePattern::new(s, ConstraintSet::with_max_window(5)).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p]);
        let _ = delta_by_deletion::<u64>(&sh, &Sequence::from_ids([0, 1]));
    }

    #[test]
    #[should_panic(expected = "does not support the max-window")]
    fn forward_backward_rejects_window() {
        let mut sigma = Alphabet::new();
        let s = Sequence::parse("a b", &mut sigma);
        let p = SensitivePattern::new(s, ConstraintSet::with_max_window(5)).unwrap();
        let _ = delta_forward_backward::<u64>(&p, &Sequence::from_ids([0, 1]));
    }

    #[test]
    fn multi_pattern_deltas_sum() {
        let mut sigma = Alphabet::new();
        let t = Sequence::parse("a b a b", &mut sigma);
        let s1 = Sequence::parse("a b", &mut sigma);
        let s2 = Sequence::parse("b a", &mut sigma);
        let sh = SensitiveSet::new(vec![s1, s2]);
        // ab embeddings: (0,1),(0,3),(2,3); ba embeddings: (1,2)
        // per-position: 0→2, 1→2(ab:1 + ba:1), 2→2(ab:1 + ba:1), 3→2
        let expect: Vec<u64> = vec![2, 2, 2, 2];
        assert_eq!(delta_all::<u64>(&sh, &t), expect);
        assert_eq!(delta_by_deletion::<u64>(&sh, &t), expect);
        assert_eq!(total_matches::<u64>(&sh, &t), 4);
    }

    #[test]
    fn bigcount_deltas_on_explosive_input() {
        // ⟨a a⟩ in a^40: each position participates in 39 embeddings;
        // counts are small but the total table is built exactly.
        let s = Sequence::from_ids(vec![0; 2]);
        let t = Sequence::from_ids(vec![0; 40]);
        let sh = SensitiveSet::new(vec![s]);
        let d = delta_all::<BigCount>(&sh, &t);
        assert!(d.iter().all(|x| *x == BigCount::from_u64(39)));
    }
}
