//! Property tests for the data-model substrate: parse/render round-trips,
//! marking invariants, itemset set semantics.

use proptest::prelude::*;
use seqhide_types::{Alphabet, Itemset, ItemsetSequence, Sequence, SequenceDb, Symbol};

fn names() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,6}", 0..=12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn sequence_parse_render_roundtrip(words in names()) {
        let mut sigma = Alphabet::new();
        let line = words.join(" ");
        let seq = Sequence::parse(&line, &mut sigma);
        prop_assert_eq!(seq.len(), words.len());
        let rendered = seq.render(&sigma);
        // re-parse the ⟨…⟩-stripped rendering
        let inner = rendered.trim_start_matches('⟨').trim_end_matches('⟩');
        let back = Sequence::parse(inner, &mut sigma);
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn db_text_roundtrip_with_marks(
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 1..=8), 0..=8),
        mark_picks in prop::collection::vec((0usize..8, 0usize..8), 0..=6),
    ) {
        // rows are non-empty: an empty sequence renders as a blank line,
        // which the parser (by documented design) skips
        let alphabet = Alphabet::anonymous(6);
        let mut db = SequenceDb::from_parts(
            alphabet,
            rows.iter().cloned().map(Sequence::from_ids).collect(),
        );
        for (r, c) in mark_picks {
            if r < db.len() && c < db.sequences()[r].len() {
                db.sequences_mut()[r].mark(c);
            }
        }
        let text = db.to_text();
        let back = SequenceDb::parse(&text);
        prop_assert_eq!(back.len(), db.len());
        prop_assert_eq!(back.total_marks(), db.total_marks());
        prop_assert_eq!(back.to_text(), text);
        // per-position mark structure survives
        for (a, b) in db.sequences().iter().zip(back.sequences()) {
            prop_assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                prop_assert_eq!(a[i].is_mark(), b[i].is_mark());
            }
        }
    }

    #[test]
    fn marking_is_idempotent_in_count(
        row in prop::collection::vec(0u32..6, 1..=10),
        pos_seed in 0usize..10,
    ) {
        let mut s = Sequence::from_ids(row.clone());
        let pos = pos_seed % row.len();
        s.mark(pos);
        let once = s.mark_count();
        s.mark(pos);
        prop_assert_eq!(s.mark_count(), once);
        prop_assert_eq!(s.len(), row.len());
        // without_marks removes exactly the marked slots
        prop_assert_eq!(s.without_marks().len(), row.len() - once);
    }

    #[test]
    fn itemset_semantics_are_set_semantics(
        a in prop::collection::vec(0u32..8, 0..=6),
        b in prop::collection::vec(0u32..8, 0..=6),
    ) {
        use std::collections::BTreeSet;
        let ia = Itemset::from_ids(a.clone());
        let ib = Itemset::from_ids(b.clone());
        let sa: BTreeSet<u32> = a.into_iter().collect();
        let sb: BTreeSet<u32> = b.into_iter().collect();
        prop_assert_eq!(ia.len(), sa.len());
        prop_assert_eq!(ia.included_in(&ib), sa.is_subset(&sb));
        for &x in &sa {
            prop_assert!(ia.contains(Symbol::new(x)));
        }
    }

    #[test]
    fn itemset_marking_removes_from_set_view(
        items in prop::collection::vec(0u32..8, 1..=6),
        victim_seed in 0usize..6,
    ) {
        let mut s = Itemset::from_ids(items.clone());
        let live: Vec<Symbol> = s.live_items().collect();
        let victim = live[victim_seed % live.len()];
        prop_assert!(s.mark_item(victim));
        prop_assert!(!s.contains(victim));
        prop_assert_eq!(s.live_len(), live.len() - 1);
        prop_assert_eq!(s.len(), live.len()); // slot preserved for M1
        // re-marking is a no-op (the item is gone)
        prop_assert!(!s.mark_item(victim));
    }

    #[test]
    fn itemset_sequence_mark_count_is_sum(
        groups in prop::collection::vec(prop::collection::vec(0u32..5, 1..=3), 0..=5),
    ) {
        let mut t = ItemsetSequence::from_ids(groups);
        let mut expected = 0;
        for e in t.elements_mut() {
            let first = e.live_items().next();
            if let Some(first) = first {
                e.mark_item(first);
                expected += 1;
            }
        }
        prop_assert_eq!(t.mark_count(), expected);
    }
}
