//! Distortion operations beyond Δ-marking.
//!
//! The paper sanitizes by one fixed operation — replacing a symbol with the
//! mark `Δ` — but the string-sanitization line of work (Bernardini et al.,
//! arXiv:1906.11030; Mieno et al., arXiv:2007.08179) hides *contiguous
//! substrings* by deletion and substitution. [`DistortOp`] names the three
//! edit operations a sanitizer may apply to one position, [`OpKind`] is the
//! operator *family* a run is configured with (substitution picks its
//! replacement symbol per edit, so the CLI selects a kind, not a concrete
//! op), and [`AppliedEdit`]/[`EditJournal`] record what was actually done to
//! a sequence — the provenance a second-stage pass or an audit needs once
//! deletion starts shifting indices.

use std::fmt;

use crate::Symbol;

/// One concrete edit applied to a single position of a sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DistortOp {
    /// Replace the symbol with the mark `Δ` (the paper's operator).
    /// Positions are preserved; `Δ` matches nothing.
    Mark,
    /// Remove the element entirely. Every later index shifts left by one,
    /// so gap/window distances change — domains that accept deletion must
    /// re-derive their counts after each delete, and must refuse a delete
    /// that would splice a new sensitive occurrence together.
    Delete,
    /// Replace the symbol with another alphabet symbol. Unlike `Δ` the
    /// replacement *can* participate in matches, so domains must verify the
    /// chosen symbol creates no new sensitive occurrence before applying.
    Substitute(Symbol),
}

impl DistortOp {
    /// The family this concrete op belongs to.
    pub fn kind(&self) -> OpKind {
        match self {
            DistortOp::Mark => OpKind::Mark,
            DistortOp::Delete => OpKind::Delete,
            DistortOp::Substitute(_) => OpKind::Substitute,
        }
    }
}

/// The operator family a sanitization run is configured with
/// (`hide --op mark|delete|substitute`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum OpKind {
    /// Δ-marking — supported by every domain.
    #[default]
    Mark,
    /// Deletion — index-shifting; only domains that re-derive counts per
    /// edit and guard against spliced occurrences accept it.
    Delete,
    /// Substitution with a non-Δ symbol chosen per edit.
    Substitute,
}

impl OpKind {
    /// All operator families, in CLI documentation order.
    pub const ALL: [OpKind; 3] = [OpKind::Mark, OpKind::Delete, OpKind::Substitute];

    /// Parses a CLI/wire name (`"mark"`, `"delete"`, `"substitute"`).
    pub fn parse(name: &str) -> Option<OpKind> {
        match name {
            "mark" => Some(OpKind::Mark),
            "delete" => Some(OpKind::Delete),
            "substitute" => Some(OpKind::Substitute),
            _ => None,
        }
    }

    /// The stable CLI/wire name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Mark => "mark",
            OpKind::Delete => "delete",
            OpKind::Substitute => "substitute",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One edit as applied: the position it targeted and the concrete op.
///
/// For `Delete`, `pos` is the index *at application time* — earlier
/// deletes in the same journal have already shifted it, so replaying a
/// journal in order reproduces the edited sequence exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppliedEdit {
    /// 0-based position in the sequence as it stood when the edit ran.
    pub pos: usize,
    /// What was done there.
    pub op: DistortOp,
}

/// The edit provenance of one sanitization run: every [`AppliedEdit`] in
/// application order, with per-family tallies for reporting.
#[derive(Clone, Debug, Default)]
pub struct EditJournal {
    edits: Vec<AppliedEdit>,
}

impl EditJournal {
    /// An empty journal.
    pub fn new() -> Self {
        EditJournal::default()
    }

    /// Records one applied edit.
    pub fn record(&mut self, pos: usize, op: DistortOp) {
        self.edits.push(AppliedEdit { pos, op });
    }

    /// The edits in application order.
    pub fn edits(&self) -> &[AppliedEdit] {
        &self.edits
    }

    /// Total number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether no edit was recorded.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of edits of the given family.
    pub fn count_of(&self, kind: OpKind) -> usize {
        self.edits.iter().filter(|e| e.op.kind() == kind).count()
    }

    /// Drops all recorded edits.
    pub fn clear(&mut self) {
        self.edits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_round_trips_names() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OpKind::parse("replace"), None);
        assert_eq!(OpKind::default(), OpKind::Mark);
    }

    #[test]
    fn distort_op_kind_projection() {
        assert_eq!(DistortOp::Mark.kind(), OpKind::Mark);
        assert_eq!(DistortOp::Delete.kind(), OpKind::Delete);
        assert_eq!(
            DistortOp::Substitute(Symbol::new(3)).kind(),
            OpKind::Substitute
        );
    }

    #[test]
    fn journal_records_and_tallies() {
        let mut j = EditJournal::new();
        assert!(j.is_empty());
        j.record(2, DistortOp::Mark);
        j.record(5, DistortOp::Delete);
        j.record(1, DistortOp::Substitute(Symbol::new(7)));
        j.record(0, DistortOp::Delete);
        assert_eq!(j.len(), 4);
        assert_eq!(j.count_of(OpKind::Mark), 1);
        assert_eq!(j.count_of(OpKind::Delete), 2);
        assert_eq!(j.count_of(OpKind::Substitute), 1);
        assert_eq!(
            j.edits()[1],
            AppliedEdit {
                pos: 5,
                op: DistortOp::Delete
            }
        );
        j.clear();
        assert!(j.is_empty());
    }
}
