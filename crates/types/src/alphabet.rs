//! Interning alphabet `Σ`.

use std::collections::HashMap;
use std::fmt;

use crate::Symbol;

/// The alphabet `Σ`: an interner mapping human-readable symbol names to
/// compact [`Symbol`] ids and back.
///
/// The paper's experiments discretize trajectories over a 10×10 grid, giving
/// an alphabet of 100 symbols named `X1Y1 … X10Y10`; web-log or clinical
/// applications would intern event names instead. Interning keeps the hot
/// dynamic programs working on dense `u32`s while the public API stays
/// string-friendly.
///
/// ```
/// use seqhide_types::Alphabet;
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("X6Y3");
/// let b = sigma.intern("X7Y2");
/// assert_ne!(a, b);
/// assert_eq!(sigma.intern("X6Y3"), a); // idempotent
/// assert_eq!(sigma.name(a), Some("X6Y3"));
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct Alphabet {
    names: Vec<String>,
    ids: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet of `n` anonymous symbols named `s0 … s{n-1}`.
    ///
    /// Handy for synthetic workloads where names carry no meaning.
    pub fn anonymous(n: usize) -> Self {
        let mut a = Self::new();
        for i in 0..n {
            a.intern(&format!("s{i}"));
        }
        a
    }

    /// Interns `name`, returning its symbol (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics if the alphabet would exceed [`Symbol::MAX_ID`] symbols, or if
    /// `name` is the reserved mark rendering `"Δ"`.
    pub fn intern(&mut self, name: &str) -> Symbol {
        assert!(
            name != "Δ",
            "the mark Δ is not part of Σ and cannot be interned"
        );
        if let Some(&s) = self.ids.get(name) {
            return s;
        }
        let id = u32::try_from(self.names.len()).expect("alphabet too large");
        let s = Symbol::new(id);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// The name of `s`, or `None` for the mark and for foreign symbols.
    pub fn name(&self, s: Symbol) -> Option<&str> {
        if s.is_mark() {
            return None;
        }
        self.names.get(s.id() as usize).map(String::as_str)
    }

    /// Renders a symbol for display: its name, `"Δ"` for the mark, or the
    /// raw id if the symbol was interned elsewhere.
    pub fn render(&self, s: Symbol) -> String {
        if s.is_mark() {
            "Δ".to_owned()
        } else {
            self.name(s)
                .map_or_else(|| format!("s{}", s.id()), str::to_owned)
        }
    }

    /// Number of interned symbols, `|Σ|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in interning order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol::new)
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet({} symbols)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut a = Alphabet::new();
        let x = a.intern("alpha");
        let y = a.intern("beta");
        assert_eq!(a.name(x), Some("alpha"));
        assert_eq!(a.name(y), Some("beta"));
        assert_eq!(a.get("alpha"), Some(x));
        assert_eq!(a.get("gamma"), None);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x1 = a.intern("x");
        let x2 = a.intern("x");
        assert_eq!(x1, x2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn anonymous_alphabet() {
        let a = Alphabet::anonymous(5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.get("s3"), Some(Symbol::new(3)));
        let all: Vec<_> = a.symbols().collect();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn render_mark_and_foreign() {
        let a = Alphabet::anonymous(1);
        assert_eq!(a.render(Symbol::MARK), "Δ");
        assert_eq!(a.render(Symbol::new(0)), "s0");
        assert_eq!(a.render(Symbol::new(99)), "s99"); // foreign id
        assert_eq!(a.name(Symbol::MARK), None);
    }

    #[test]
    #[should_panic(expected = "cannot be interned")]
    fn mark_name_rejected() {
        Alphabet::new().intern("Δ");
    }

    #[test]
    fn empty_checks() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
