//! Alphabet symbols and the sanitization mark `Δ`.

use std::fmt;

/// A symbol of the alphabet `Σ`, or the distinguished mark `Δ`.
///
/// Symbols are compact interned ids handed out by an
/// [`Alphabet`](crate::Alphabet). The mark [`Symbol::MARK`] is *not* part of
/// `Σ`: it is the symbol written into a sequence by the sanitization process
/// and it matches nothing — not even another mark. Keeping the mark inside
/// the `Symbol` value space (rather than using `Option<Symbol>`) keeps
/// sequences dense and the matching DP branch-light.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The sanitization mark `Δ`. Never equal to any alphabet symbol and
    /// never matched by [`Symbol::matches`].
    pub const MARK: Symbol = Symbol(u32::MAX);

    /// Largest id an alphabet may hand out (everything above is reserved).
    pub const MAX_ID: u32 = u32::MAX - 1;

    /// Creates a symbol from a raw interned id.
    ///
    /// # Panics
    /// Panics if `id` collides with the reserved mark id.
    #[inline]
    pub fn new(id: u32) -> Self {
        assert!(id <= Self::MAX_ID, "symbol id collides with the mark Δ");
        Symbol(id)
    }

    /// The raw interned id (the mark reports `u32::MAX`).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Whether this symbol is the sanitization mark `Δ`.
    #[inline]
    pub fn is_mark(self) -> bool {
        self.0 == u32::MAX
    }

    /// Match test used throughout the matching engine: two symbols match iff
    /// they are equal **and neither is the mark**. The mark never matches,
    /// which is exactly what makes marking a sound sanitization operator
    /// (it removes embeddings and can never create one).
    #[inline]
    pub fn matches(self, other: Symbol) -> bool {
        self == other && !self.is_mark()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mark() {
            write!(f, "Δ")
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_not_a_regular_symbol() {
        assert!(Symbol::MARK.is_mark());
        assert!(!Symbol::new(0).is_mark());
        assert!(!Symbol::new(Symbol::MAX_ID).is_mark());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn reserved_id_rejected() {
        let _ = Symbol::new(u32::MAX);
    }

    #[test]
    fn matches_requires_equality() {
        let a = Symbol::new(1);
        let b = Symbol::new(2);
        assert!(a.matches(a));
        assert!(!a.matches(b));
        assert!(!b.matches(a));
    }

    #[test]
    fn mark_matches_nothing_including_itself() {
        let a = Symbol::new(7);
        assert!(!Symbol::MARK.matches(a));
        assert!(!a.matches(Symbol::MARK));
        assert!(!Symbol::MARK.matches(Symbol::MARK));
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", Symbol::new(3)), "s3");
        assert_eq!(format!("{:?}", Symbol::MARK), "Δ");
        assert_eq!(format!("{}", Symbol::MARK), "Δ");
    }
}
