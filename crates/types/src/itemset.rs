//! Itemset sequences — the classical sequential-pattern setting of §7.1,
//! where each element of a sequence is a non-empty *set* of items and a
//! pattern element matches a data element by **set inclusion** rather than
//! symbol equality.

use std::fmt;

use crate::{Alphabet, Symbol};

/// A set of items (symbols), kept sorted and deduplicated.
///
/// Marked items stay in place as [`Symbol::MARK`] so that the itemset keeps
/// its identity while contributing nothing to inclusion tests — the direct
/// analogue of marking a symbol in a plain sequence.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset(Vec<Symbol>);

impl Itemset {
    /// Creates an itemset from items (sorted and deduplicated).
    pub fn new(mut items: Vec<Symbol>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset(items)
    }

    /// Convenience constructor from raw ids.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::new(ids.into_iter().map(Symbol::new).collect())
    }

    /// The items, in sorted order (marks sort last).
    pub fn items(&self) -> &[Symbol] {
        &self.0
    }

    /// Number of slots, including marked ones.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the itemset has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of *live* (unmarked) items.
    pub fn live_len(&self) -> usize {
        self.0.iter().filter(|s| !s.is_mark()).count()
    }

    /// Number of marked slots.
    pub fn mark_count(&self) -> usize {
        self.0.iter().filter(|s| s.is_mark()).count()
    }

    /// Whether this itemset (as a pattern element) is **included** in `other`
    /// (as a data element): every live item of `self` must be a live item of
    /// `other`. A pattern element containing a mark never matches.
    pub fn included_in(&self, other: &Itemset) -> bool {
        self.0.iter().all(|s| !s.is_mark() && other.contains(*s))
    }

    /// Whether `item` is present and unmarked.
    pub fn contains(&self, item: Symbol) -> bool {
        !item.is_mark() && self.0.binary_search(&item).is_ok()
    }

    /// Marks `item` (replaces it with `Δ`), returning `true` if it was
    /// present and live. The slot is kept so M1 counts it.
    pub fn mark_item(&mut self, item: Symbol) -> bool {
        if item.is_mark() {
            return false;
        }
        match self.0.binary_search(&item) {
            Ok(pos) => {
                self.0[pos] = Symbol::MARK;
                // Restore sort order (marks sort last).
                self.0.sort_unstable();
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over live items.
    pub fn live_items(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.0.iter().copied().filter(|s| !s.is_mark())
    }

    /// Removes every marked slot, returning how many were removed.
    pub fn delete_marked(&mut self) -> usize {
        let before = self.0.len();
        self.0.retain(|s| !s.is_mark());
        before - self.0.len()
    }

    /// Renders with names from `alphabet`, e.g. `{a b Δ}`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let body: Vec<String> = self.0.iter().map(|&s| alphabet.render(s)).collect();
        format!("{{{}}}", body.join(" "))
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s:?}")?;
        }
        write!(f, "}}")
    }
}

/// A sequence of itemsets — the data (and pattern) shape of classical
/// sequential pattern mining (Agrawal & Srikant, ICDE'95), to which §7.1 of
/// the paper extends the hiding framework.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ItemsetSequence(Vec<Itemset>);

impl ItemsetSequence {
    /// Creates a sequence from elements.
    pub fn new(elements: Vec<Itemset>) -> Self {
        ItemsetSequence(elements)
    }

    /// Convenience constructor from raw id groups, e.g. `[[1,2],[3]]`.
    pub fn from_ids<O, I>(groups: O) -> Self
    where
        O: IntoIterator<Item = I>,
        I: IntoIterator<Item = u32>,
    {
        ItemsetSequence(groups.into_iter().map(Itemset::from_ids).collect())
    }

    /// Number of elements (itemsets).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The elements.
    pub fn elements(&self) -> &[Itemset] {
        &self.0
    }

    /// Mutable access to the elements (used by the itemset sanitizer).
    pub fn elements_mut(&mut self) -> &mut [Itemset] {
        &mut self.0
    }

    /// Total marked item slots across all elements (M1 contribution).
    pub fn mark_count(&self) -> usize {
        self.0.iter().map(Itemset::mark_count).sum()
    }

    /// Removes every marked slot and drops elements left empty, returning
    /// the number of slots removed. Dropping an element shifts element
    /// positions, so gap-constrained occurrences can reappear — run the
    /// safe post-deletion loop when constraints are in play.
    pub fn delete_marked(&mut self) -> usize {
        let removed = self.0.iter_mut().map(Itemset::delete_marked).sum();
        self.0.retain(|e| !e.is_empty());
        removed
    }

    /// Renders with names from `alphabet`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let body: Vec<String> = self.0.iter().map(|e| e.render(alphabet)).collect();
        format!("⟨{}⟩", body.join(" "))
    }
}

impl fmt::Debug for ItemsetSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e:?}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_sorts_and_dedups() {
        let s = Itemset::from_ids([3, 1, 2, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.items()[0], Symbol::new(1));
    }

    #[test]
    fn inclusion_is_subset() {
        let small = Itemset::from_ids([1, 3]);
        let big = Itemset::from_ids([1, 2, 3]);
        assert!(small.included_in(&big));
        assert!(!big.included_in(&small));
        assert!(Itemset::from_ids([]).included_in(&big));
    }

    #[test]
    fn marking_breaks_inclusion() {
        let pat = Itemset::from_ids([1, 3]);
        let mut data = Itemset::from_ids([1, 2, 3]);
        assert!(pat.included_in(&data));
        assert!(data.mark_item(Symbol::new(3)));
        assert!(!pat.included_in(&data));
        assert_eq!(data.mark_count(), 1);
        assert_eq!(data.live_len(), 2);
        // marking an absent item is a no-op
        assert!(!data.mark_item(Symbol::new(9)));
        assert_eq!(data.mark_count(), 1);
    }

    #[test]
    fn marked_item_not_contained() {
        let mut s = Itemset::from_ids([5]);
        s.mark_item(Symbol::new(5));
        assert!(!s.contains(Symbol::new(5)));
        assert!(!s.contains(Symbol::MARK));
    }

    #[test]
    fn pattern_with_mark_matches_nothing() {
        let mut pat = Itemset::from_ids([1]);
        pat.mark_item(Symbol::new(1));
        let data = Itemset::from_ids([1, 2]);
        assert!(!pat.included_in(&data));
    }

    #[test]
    fn sequence_mark_count_sums() {
        let mut t = ItemsetSequence::from_ids([vec![1, 2], vec![3]]);
        t.elements_mut()[0].mark_item(Symbol::new(1));
        t.elements_mut()[1].mark_item(Symbol::new(3));
        assert_eq!(t.mark_count(), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_marked_drops_slots_and_empty_elements() {
        let mut t = ItemsetSequence::from_ids([vec![1, 2], vec![3], vec![4]]);
        t.elements_mut()[0].mark_item(Symbol::new(1));
        t.elements_mut()[1].mark_item(Symbol::new(3));
        assert_eq!(t.delete_marked(), 2);
        assert_eq!(t.len(), 2); // the all-marked {3} element is gone
        assert_eq!(t.mark_count(), 0);
        assert_eq!(t.elements()[0].items(), &[Symbol::new(2)]);
    }

    #[test]
    fn render_groups() {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        let t = ItemsetSequence::new(vec![Itemset::new(vec![a, b]), Itemset::new(vec![a])]);
        assert_eq!(t.render(&sigma), "⟨{a b} {a}⟩");
    }
}
