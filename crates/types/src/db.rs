//! The sequence database `D`.

use std::fmt;

use crate::{Alphabet, Sequence};

/// A database `D` of sequences together with its alphabet `Σ`.
///
/// `D` is the object the sanitization problem transforms: the sanitizer
/// consumes a `SequenceDb` and produces the released database `D'` (same
/// type; marked positions carry [`Symbol::MARK`](crate::Symbol::MARK)).
#[derive(Clone, Default)]
pub struct SequenceDb {
    alphabet: Alphabet,
    sequences: Vec<Sequence>,
}

/// Summary statistics of a database, mirroring how the paper characterises
/// its datasets (size, average length, alphabet size).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DbStats {
    /// Number of sequences `|D|`.
    pub len: usize,
    /// Total number of symbol occurrences across all sequences.
    pub total_symbols: usize,
    /// Average sequence length (0.0 for an empty database).
    pub avg_len: f64,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Alphabet size `|Σ|`.
    pub alphabet_len: usize,
    /// Total number of marked (`Δ`) positions — the distortion measure M1.
    pub marks: usize,
}

impl SequenceDb {
    /// Creates an empty database over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        SequenceDb {
            alphabet,
            sequences: Vec::new(),
        }
    }

    /// Creates a database from parts.
    pub fn from_parts(alphabet: Alphabet, sequences: Vec<Sequence>) -> Self {
        SequenceDb {
            alphabet,
            sequences,
        }
    }

    /// Parses a database from one whitespace-separated sequence per line.
    /// Blank lines and lines starting with `#` are skipped.
    ///
    /// ```
    /// use seqhide_types::SequenceDb;
    /// let db = SequenceDb::parse("a b c\n# comment\nb c\n");
    /// assert_eq!(db.len(), 2);
    /// ```
    pub fn parse(text: &str) -> Self {
        let mut alphabet = Alphabet::new();
        let sequences = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| Sequence::parse(l, &mut alphabet))
            .collect();
        SequenceDb {
            alphabet,
            sequences,
        }
    }

    /// Appends a sequence.
    pub fn push(&mut self, t: Sequence) {
        self.sequences.push(t);
    }

    /// Number of sequences `|D|`.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether `D` is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The sequences of `D`.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Mutable access to the sequences (used by sanitizers).
    pub fn sequences_mut(&mut self) -> &mut [Sequence] {
        &mut self.sequences
    }

    /// The alphabet `Σ`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Mutable access to the alphabet (for incremental loading).
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        &mut self.alphabet
    }

    /// Total number of marked positions across all sequences (measure M1).
    pub fn total_marks(&self) -> usize {
        self.sequences.iter().map(Sequence::mark_count).sum()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> DbStats {
        let total: usize = self.sequences.iter().map(Sequence::len).sum();
        let max = self.sequences.iter().map(Sequence::len).max().unwrap_or(0);
        DbStats {
            len: self.sequences.len(),
            total_symbols: total,
            avg_len: if self.sequences.is_empty() {
                0.0
            } else {
                total as f64 / self.sequences.len() as f64
            },
            max_len: max,
            alphabet_len: self.alphabet.len(),
            marks: self.total_marks(),
        }
    }

    /// Serialises to the same plain-text format accepted by
    /// [`SequenceDb::parse`] (marks render as `Δ` and parse back to the
    /// mark, so sanitized databases round-trip; consumers treat `Δ` as a
    /// missing value, as §4 of the paper suggests).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for t in &self.sequences {
            let line: Vec<String> = t.iter().map(|&s| self.alphabet.render(s)).collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for SequenceDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SequenceDb(|D|={}, |Σ|={})",
            self.sequences.len(),
            self.alphabet.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let db = SequenceDb::parse("# header\n\na b\nb c d\n  \n");
        assert_eq!(db.len(), 2);
        assert_eq!(db.sequences()[1].len(), 3);
        assert_eq!(db.alphabet().len(), 4);
    }

    #[test]
    fn stats_on_empty_db() {
        let db = SequenceDb::new(Alphabet::new());
        let s = db.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.max_len, 0);
    }

    #[test]
    fn stats_counts() {
        let mut db = SequenceDb::parse("a b c\na a\n");
        db.sequences_mut()[0].mark(1);
        let s = db.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.total_symbols, 5);
        assert!((s.avg_len - 2.5).abs() < 1e-12);
        assert_eq!(s.max_len, 3);
        assert_eq!(s.marks, 1);
        assert_eq!(db.total_marks(), 1);
    }

    #[test]
    fn text_roundtrip_without_marks() {
        let db = SequenceDb::parse("a b\nc\n");
        let text = db.to_text();
        let db2 = SequenceDb::parse(&text);
        assert_eq!(db2.len(), db.len());
        assert_eq!(db2.to_text(), text);
    }

    #[test]
    fn marks_render_in_text() {
        let mut db = SequenceDb::parse("a b\n");
        db.sequences_mut()[0].mark(0);
        assert_eq!(db.to_text(), "Δ b\n");
    }

    #[test]
    fn marked_db_roundtrips_through_text() {
        let mut db = SequenceDb::parse("a b c\nb c\n");
        db.sequences_mut()[0].mark(1);
        let back = SequenceDb::parse(&db.to_text());
        assert_eq!(back.total_marks(), 1);
        assert!(back.sequences()[0][1].is_mark());
        assert_eq!(back.to_text(), db.to_text());
    }
}
