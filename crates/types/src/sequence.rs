//! Finite sequences of symbols — the element type of the database `D` and
//! the shape of both input data and sensitive patterns.

use std::fmt;
use std::ops::Index;

use crate::{Alphabet, Symbol};

/// A finite sequence `T = ⟨t₁, …, t_n⟩` of symbols from `Σ ∪ {Δ}`.
///
/// Used for both database sequences and (mark-free) sensitive patterns.
/// Indexing is **0-based** in the API; the paper's prose is 1-based, and the
/// documentation of the matching crate spells out the correspondence where
/// it matters.
///
/// ```
/// use seqhide_types::{Sequence, Symbol};
/// let t = Sequence::from_ids([1, 1, 2, 3, 3, 2, 1, 4]);
/// assert_eq!(t.len(), 8);
/// assert_eq!(t[0], Symbol::new(1));
/// assert_eq!(t.mark_count(), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Sequence(Vec<Symbol>);

impl Sequence {
    /// Creates a sequence from symbols.
    pub fn new(symbols: Vec<Symbol>) -> Self {
        Sequence(symbols)
    }

    /// The empty sequence `⟨⟩`.
    pub fn empty() -> Self {
        Sequence(Vec::new())
    }

    /// Convenience constructor from raw symbol ids (mainly for tests and
    /// examples).
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Sequence(ids.into_iter().map(Symbol::new).collect())
    }

    /// Interns whitespace-separated `names` into `alphabet` and builds the
    /// sequence, e.g. `Sequence::parse("X6Y3 X7Y2", &mut sigma)`. The token
    /// `Δ` parses to [`Symbol::MARK`], so released (sanitized) databases
    /// round-trip through text.
    pub fn parse(names: &str, alphabet: &mut Alphabet) -> Self {
        Sequence(
            names
                .split_whitespace()
                .map(|w| {
                    if w == "Δ" {
                        Symbol::MARK
                    } else {
                        alphabet.intern(w)
                    }
                })
                .collect(),
        )
    }

    /// Length `n` of the sequence.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }

    /// Iterates over the symbols.
    pub fn iter(&self) -> std::slice::Iter<'_, Symbol> {
        self.0.iter()
    }

    /// Replaces the symbol at 0-based `pos` with the mark `Δ`, returning the
    /// previous symbol. This is the paper's *marking* sanitization operator.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    pub fn mark(&mut self, pos: usize) -> Symbol {
        std::mem::replace(&mut self.0[pos], Symbol::MARK)
    }

    /// Sets the symbol at 0-based `pos` (used by the Δ-replacement second
    /// stage), returning the previous symbol.
    pub fn set(&mut self, pos: usize, s: Symbol) -> Symbol {
        std::mem::replace(&mut self.0[pos], s)
    }

    /// Removes the element at 0-based `pos` **in place**, returning the
    /// removed symbol — the `DistortOp::Delete` sanitization operator.
    /// Every later index shifts left by one; callers tracking positions
    /// (δ buffers, gap distances) must re-derive them afterwards.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    pub fn delete(&mut self, pos: usize) -> Symbol {
        self.0.remove(pos)
    }

    /// Number of marked (`Δ`) positions — one sequence's contribution to the
    /// paper's distortion measure M1.
    pub fn mark_count(&self) -> usize {
        self.0.iter().filter(|s| s.is_mark()).count()
    }

    /// Whether any position is marked.
    pub fn has_marks(&self) -> bool {
        self.0.iter().any(|s| s.is_mark())
    }

    /// Returns a copy with all marked positions deleted (the paper's
    /// second-stage *deletion* option).
    pub fn without_marks(&self) -> Sequence {
        Sequence(self.0.iter().copied().filter(|s| !s.is_mark()).collect())
    }

    /// Returns a copy with the element at `pos` **deleted** (the device used
    /// in the paper's Theorem 2 to compute `δ(T[i])`). Note that deletion
    /// shifts the indices of later elements — which is precisely why the
    /// matching crate uses temporary *marking* instead when gap or window
    /// constraints are active.
    pub fn without_index(&self, pos: usize) -> Sequence {
        let mut v = self.0.clone();
        v.remove(pos);
        Sequence(v)
    }

    /// Positions (0-based) whose symbol equals `s`.
    pub fn positions_of(&self, s: Symbol) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (t == s).then_some(i))
            .collect()
    }

    /// Renders the sequence with names from `alphabet`, e.g. `⟨X6Y3 Δ X7Y2⟩`.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let body: Vec<String> = self.0.iter().map(|&s| alphabet.render(s)).collect();
        format!("⟨{}⟩", body.join(" "))
    }
}

impl Index<usize> for Sequence {
    type Output = Symbol;
    fn index(&self, i: usize) -> &Symbol {
        &self.0[i]
    }
}

impl From<Vec<Symbol>> for Sequence {
    fn from(v: Vec<Symbol>) -> Self {
        Sequence(v)
    }
}

impl FromIterator<Symbol> for Sequence {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        Sequence(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Symbol;
    type IntoIter = std::slice::Iter<'a, Symbol>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s:?}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let t = Sequence::from_ids([1, 2, 3]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Sequence::empty().is_empty());
    }

    #[test]
    fn parse_interns_in_order() {
        let mut sigma = Alphabet::new();
        let t = Sequence::parse("a b a c", &mut sigma);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], t[2]);
        assert_eq!(sigma.len(), 3);
    }

    #[test]
    fn marking_replaces_and_counts() {
        let mut t = Sequence::from_ids([1, 2, 3]);
        let old = t.mark(1);
        assert_eq!(old, Symbol::new(2));
        assert!(t[1].is_mark());
        assert_eq!(t.mark_count(), 1);
        assert!(t.has_marks());
    }

    #[test]
    fn without_marks_deletes_only_marks() {
        let mut t = Sequence::from_ids([1, 2, 3, 2]);
        t.mark(1);
        t.mark(3);
        assert_eq!(t.without_marks(), Sequence::from_ids([1, 3]));
        // original untouched
        assert_eq!(t.mark_count(), 2);
    }

    #[test]
    fn without_index_shifts() {
        let t = Sequence::from_ids([1, 2, 3]);
        assert_eq!(t.without_index(0), Sequence::from_ids([2, 3]));
        assert_eq!(t.without_index(2), Sequence::from_ids([1, 2]));
    }

    #[test]
    fn delete_removes_in_place_and_shifts() {
        let mut t = Sequence::from_ids([1, 2, 3]);
        assert_eq!(t.delete(1), Symbol::new(2));
        assert_eq!(t, Sequence::from_ids([1, 3]));
        assert_eq!(t.delete(0), Symbol::new(1));
        assert_eq!(t, Sequence::from_ids([3]));
    }

    #[test]
    fn positions_of_finds_all() {
        let t = Sequence::from_ids([5, 1, 5, 5, 2]);
        assert_eq!(t.positions_of(Symbol::new(5)), vec![0, 2, 3]);
        assert_eq!(t.positions_of(Symbol::new(9)), Vec::<usize>::new());
    }

    #[test]
    fn set_replaces_symbol() {
        let mut t = Sequence::from_ids([1, 2]);
        t.mark(0);
        let old = t.set(0, Symbol::new(9));
        assert!(old.is_mark());
        assert_eq!(t[0], Symbol::new(9));
    }

    #[test]
    fn render_uses_alphabet() {
        let mut sigma = Alphabet::new();
        let mut t = Sequence::parse("a b c", &mut sigma);
        t.mark(1);
        assert_eq!(t.render(&sigma), "⟨a Δ c⟩");
    }

    #[test]
    fn debug_format() {
        let mut t = Sequence::from_ids([0, 1]);
        t.mark(0);
        assert_eq!(format!("{t:?}"), "⟨Δ s1⟩");
    }
}
