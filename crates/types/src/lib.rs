//! # seqhide-types
//!
//! Data model for sequence knowledge hiding, reproducing the setting of
//! *Hiding Sequences* (Abul, Atzori, Bonchi, Giannotti — ICDE 2007).
//!
//! The paper works over a database `D` of finite sequences of symbols drawn
//! from an alphabet `Σ`, and sanitizes sequences by *marking*: replacing a
//! symbol at a chosen position with a special symbol `Δ ∉ Σ` that matches
//! nothing. This crate provides:
//!
//! * [`Symbol`] — an interned alphabet symbol, with the distinguished
//!   [`Symbol::MARK`] playing the role of `Δ`;
//! * [`Alphabet`] — an interner mapping symbol names (e.g. grid cells
//!   `X6Y3`) to compact ids;
//! * [`Sequence`] — a finite sequence of symbols, the element type of `D`;
//! * [`DistortOp`] / [`OpKind`] / [`EditJournal`] — the sanitization edit
//!   model (mark / delete / substitute) and per-sequence edit provenance;
//! * [`SequenceDb`] — the database `D` itself;
//! * [`Itemset`] / [`ItemsetSequence`] — the classical sequential-pattern
//!   setting of §7.1 (sequences of sets of items);
//! * [`TimedSequence`] — event sequences with real-time tags (§7.2).
//!
//! Everything downstream (matching, mining, sanitization) is built on these
//! types; they deliberately carry no algorithmic behaviour beyond basic
//! structural queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod db;
mod distort;
mod itemset;
mod sequence;
mod symbol;
mod timed;

pub use alphabet::Alphabet;
pub use db::{DbStats, SequenceDb};
pub use distort::{AppliedEdit, DistortOp, EditJournal, OpKind};
pub use itemset::{Itemset, ItemsetSequence};
pub use sequence::Sequence;
pub use symbol::Symbol;
pub use timed::{TimeTag, TimedEvent, TimedSequence};
