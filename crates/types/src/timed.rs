//! Event sequences with real-time tags (§7.2 of the paper).
//!
//! The paper observes that its gap/window machinery only needs *indices*
//! computed over `T`; when events carry real timestamps, min-gap, max-gap
//! and max-window constraints can be expressed in real time instead and the
//! relevant indices located through the tags. [`TimedSequence`] carries the
//! tags; the adapter that translates time-expressed constraints into the
//! matching engine lives in `seqhide-core::timed`.

use std::fmt;

use crate::{Sequence, Symbol};

/// A timestamp in abstract ticks (e.g. seconds). Integer ticks keep `Eq`/`Ord`
/// exact; callers pick the resolution.
pub type TimeTag = u64;

/// One time-tagged event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimedEvent {
    /// The event symbol.
    pub symbol: Symbol,
    /// Its time tag (non-decreasing within a sequence).
    pub time: TimeTag,
}

/// A sequence of events annotated with non-decreasing time tags.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct TimedSequence(Vec<TimedEvent>);

impl TimedSequence {
    /// Creates a timed sequence.
    ///
    /// # Panics
    /// Panics if the time tags are not non-decreasing.
    pub fn new(events: Vec<TimedEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].time <= w[1].time),
            "time tags must be non-decreasing"
        );
        TimedSequence(events)
    }

    /// Builds from parallel `(symbol id, time)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u32, TimeTag)>>(pairs: I) -> Self {
        Self::new(
            pairs
                .into_iter()
                .map(|(id, time)| TimedEvent {
                    symbol: Symbol::new(id),
                    time,
                })
                .collect(),
        )
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The events.
    pub fn events(&self) -> &[TimedEvent] {
        &self.0
    }

    /// The time tag of the event at `pos`.
    pub fn time_at(&self, pos: usize) -> TimeTag {
        self.0[pos].time
    }

    /// Marks the event at `pos` (the tag is kept — a marked event still
    /// occupies its instant; it just matches nothing).
    pub fn mark(&mut self, pos: usize) -> Symbol {
        std::mem::replace(&mut self.0[pos].symbol, Symbol::MARK)
    }

    /// Sets the symbol of the event at `pos` (tag unchanged), returning the
    /// previous symbol. Used to undo temporary marks during `δ` computation.
    pub fn set_symbol(&mut self, pos: usize, s: Symbol) -> Symbol {
        std::mem::replace(&mut self.0[pos].symbol, s)
    }

    /// Number of marked events.
    pub fn mark_count(&self) -> usize {
        self.0.iter().filter(|e| e.symbol.is_mark()).count()
    }

    /// Removes every marked event, returning how many were removed. The
    /// surviving events keep their time tags, so — unlike positional
    /// gaps in plain sequences — time-expressed constraints are evaluated
    /// identically before and after deletion.
    pub fn delete_marked(&mut self) -> usize {
        let before = self.0.len();
        self.0.retain(|e| !e.symbol.is_mark());
        before - self.0.len()
    }

    /// The untimed symbol sequence (the projection the matching engine works
    /// on; constraint translation happens in the caller).
    pub fn to_sequence(&self) -> Sequence {
        self.0.iter().map(|e| e.symbol).collect()
    }

    /// Applies marks recorded on a plain [`Sequence`] of the same length back
    /// onto this timed sequence (used after sanitizing the projection).
    ///
    /// # Panics
    /// Panics if lengths differ or if unmarked positions disagree.
    pub fn apply_marks_from(&mut self, sanitized: &Sequence) {
        assert_eq!(self.len(), sanitized.len(), "length mismatch");
        for (e, &s) in self.0.iter_mut().zip(sanitized.iter()) {
            if s.is_mark() {
                e.symbol = Symbol::MARK;
            } else {
                assert_eq!(e.symbol, s, "unmarked positions must agree");
            }
        }
    }
}

impl fmt::Debug for TimedSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:?}@{}", e.symbol, e.time)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_requires_sorted_times() {
        let t = TimedSequence::from_pairs([(1, 0), (2, 5), (3, 5), (4, 9)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.time_at(1), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_times_rejected() {
        let _ = TimedSequence::from_pairs([(1, 5), (2, 3)]);
    }

    #[test]
    fn projection_and_mark_roundtrip() {
        let mut t = TimedSequence::from_pairs([(1, 0), (2, 1), (3, 2)]);
        let mut proj = t.to_sequence();
        assert_eq!(proj, Sequence::from_ids([1, 2, 3]));
        proj.mark(1);
        t.apply_marks_from(&proj);
        assert_eq!(t.mark_count(), 1);
        assert!(t.events()[1].symbol.is_mark());
        assert_eq!(t.time_at(1), 1); // tag survives marking
    }

    #[test]
    fn direct_mark() {
        let mut t = TimedSequence::from_pairs([(7, 0)]);
        let old = t.mark(0);
        assert_eq!(old, Symbol::new(7));
        assert_eq!(t.mark_count(), 1);
    }

    #[test]
    fn delete_marked_keeps_survivor_tags() {
        let mut t = TimedSequence::from_pairs([(1, 0), (2, 5), (3, 9)]);
        t.mark(1);
        assert_eq!(t.delete_marked(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.time_at(0), 0);
        assert_eq!(t.time_at(1), 9); // tags survive deletion unchanged
        assert_eq!(t.delete_marked(), 0);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn apply_marks_rejects_divergent_symbols() {
        let mut t = TimedSequence::from_pairs([(1, 0)]);
        let other = Sequence::from_ids([2]);
        t.apply_marks_from(&other);
    }
}
