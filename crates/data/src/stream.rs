//! Streaming dataset IO: bounded-memory readers and writers for the
//! two-pass sanitization pipeline.
//!
//! [`crate::io::read_db`] slurps the whole file into a [`SequenceDb`] —
//! fine for paper-scale datasets, a hard wall for databases larger than
//! RAM. The types here keep only O(1) sequences resident:
//!
//! * [`SeqReader`] — parses sequences one line at a time over buffered IO,
//!   interning symbols into a caller-owned [`Alphabet`]. It accepts exactly
//!   the lines [`SequenceDb::parse`] accepts (trimmed, blank and `#` lines
//!   skipped), in the same order, so a full drain reproduces the in-memory
//!   parse verbatim.
//! * [`SeqWriter`] — renders sequences one line at a time in exactly the
//!   [`SequenceDb::to_text`] byte format (`Δ` for marks, single spaces,
//!   trailing newline per line).
//! * [`ShardWriter`] — a spill-capable byte sink: output accumulates in
//!   memory up to a configurable budget, then spills to numbered shard
//!   files; `finish_*` replays the shards in order. The final artifact
//!   only appears once the whole run succeeded, so a crashed pass never
//!   leaves a half-written release behind.

use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use seqhide_types::{
    Alphabet, ItemsetSequence, Sequence, SequenceDb, Symbol, TimedEvent, TimedSequence,
};

use crate::io::{parse_itemset_line, parse_timed_line, write_itemset_line, write_timed_line};

/// One-line-per-sequence text codec: how a sequence type parses from and
/// renders to a single line of the streaming formats. Implementations
/// must round-trip bytes exactly with their whole-file counterparts in
/// [`crate::io`] (the streamed release must equal the in-memory one), and
/// line skipping (blank / `#`) is the reader's concern, not the codec's.
pub trait StreamCodec {
    /// The sequence type this codec reads and writes.
    type Seq;

    /// Parses one trimmed, non-blank, non-comment line. `lineno` is the
    /// 1-based file line number, for error messages.
    fn parse_line(
        &self,
        lineno: usize,
        line: &str,
        alphabet: &mut Alphabet,
    ) -> io::Result<Self::Seq>;

    /// Writes `t` as one line, including the trailing newline.
    fn write_line(&self, alphabet: &Alphabet, t: &Self::Seq, out: &mut dyn Write)
        -> io::Result<()>;

    /// Heap payload of one resident sequence (the quantity the streaming
    /// driver's `peak_resident_batch` gauge sums).
    fn resident_bytes(&self, t: &Self::Seq) -> u64;
}

/// Codec for plain sequences (`a b c`; marks render as `Δ`) — the
/// [`SequenceDb::parse`] / [`SequenceDb::to_text`] line format.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainCodec;

impl StreamCodec for PlainCodec {
    type Seq = Sequence;

    fn parse_line(
        &self,
        _lineno: usize,
        line: &str,
        alphabet: &mut Alphabet,
    ) -> io::Result<Sequence> {
        Ok(Sequence::parse(line, alphabet))
    }

    fn write_line(&self, alphabet: &Alphabet, t: &Sequence, out: &mut dyn Write) -> io::Result<()> {
        for (i, &s) in t.iter().enumerate() {
            if i > 0 {
                out.write_all(b" ")?;
            }
            out.write_all(alphabet.render(s).as_bytes())?;
        }
        out.write_all(b"\n")
    }

    fn resident_bytes(&self, t: &Sequence) -> u64 {
        (t.len() * std::mem::size_of::<Symbol>()) as u64
    }
}

/// Codec for itemset sequences (`bread,milk beer`) — the
/// [`crate::io::parse_itemset_db`] line format.
#[derive(Clone, Copy, Debug, Default)]
pub struct ItemsetCodec;

impl StreamCodec for ItemsetCodec {
    type Seq = ItemsetSequence;

    fn parse_line(
        &self,
        _lineno: usize,
        line: &str,
        alphabet: &mut Alphabet,
    ) -> io::Result<ItemsetSequence> {
        Ok(parse_itemset_line(line, alphabet))
    }

    fn write_line(
        &self,
        alphabet: &Alphabet,
        t: &ItemsetSequence,
        out: &mut dyn Write,
    ) -> io::Result<()> {
        write_itemset_line(alphabet, t, out)
    }

    fn resident_bytes(&self, t: &ItemsetSequence) -> u64 {
        t.elements()
            .iter()
            .map(|e| std::mem::size_of_val(e.items()) as u64)
            .sum()
    }
}

/// Codec for timed sequences (`login@0 search@15`) — the
/// [`crate::io::parse_timed_db`] line format.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimedCodec;

impl StreamCodec for TimedCodec {
    type Seq = TimedSequence;

    fn parse_line(
        &self,
        lineno: usize,
        line: &str,
        alphabet: &mut Alphabet,
    ) -> io::Result<TimedSequence> {
        parse_timed_line(lineno, line, alphabet)
    }

    fn write_line(
        &self,
        alphabet: &Alphabet,
        t: &TimedSequence,
        out: &mut dyn Write,
    ) -> io::Result<()> {
        write_timed_line(alphabet, t, out)
    }

    fn resident_bytes(&self, t: &TimedSequence) -> u64 {
        (t.len() * std::mem::size_of::<TimedEvent>()) as u64
    }
}

/// Streaming reader over one-sequence-per-line text, yielding parsed
/// [`Sequence`]s in file order.
///
/// ```
/// use seqhide_data::stream::SeqReader;
/// use seqhide_types::Alphabet;
/// let mut sigma = Alphabet::new();
/// let mut r = SeqReader::new("a b\n# comment\n\nb c\n".as_bytes());
/// let mut n = 0;
/// while let Some(t) = r.next_seq(&mut sigma).unwrap() {
///     assert_eq!(t.len(), 2);
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// ```
pub struct SeqReader<R> {
    inner: R,
    line: String,
    lineno: usize,
}

impl SeqReader<BufReader<File>> {
    /// Opens `path` for streaming reads.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(SeqReader::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> SeqReader<R> {
    /// Wraps an already-buffered reader.
    pub fn new(inner: R) -> Self {
        SeqReader {
            inner,
            line: String::new(),
            lineno: 0,
        }
    }

    /// Parses the next sequence, interning its symbols into `alphabet`.
    /// Returns `Ok(None)` at end of input. Blank lines and `#` comments
    /// are skipped exactly as [`SequenceDb::parse`] skips them.
    pub fn next_seq(&mut self, alphabet: &mut Alphabet) -> io::Result<Option<Sequence>> {
        self.next_record(&PlainCodec, alphabet)
    }

    /// Parses the next record through `codec`, interning its symbols into
    /// `alphabet`. Returns `Ok(None)` at end of input; blank lines and
    /// `#` comments are skipped. Parse errors carry the 1-based file line
    /// number, matching the whole-file parsers in [`crate::io`].
    pub fn next_record<K: StreamCodec>(
        &mut self,
        codec: &K,
        alphabet: &mut Alphabet,
    ) -> io::Result<Option<K::Seq>> {
        loop {
            self.line.clear();
            if self.inner.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return codec.parse_line(self.lineno, line, alphabet).map(Some);
        }
    }
}

/// Streaming writer emitting the exact byte format of
/// [`SequenceDb::to_text`], one sequence per call.
pub struct SeqWriter<W> {
    inner: W,
}

impl<W: Write> SeqWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        SeqWriter { inner }
    }

    /// Writes `t` as one line (`Δ` for marks, symbols space-joined).
    pub fn write_seq(&mut self, alphabet: &Alphabet, t: &Sequence) -> io::Result<()> {
        PlainCodec.write_line(alphabet, t, &mut self.inner)
    }

    /// Unwraps the sink (flushing is the caller's concern for raw sinks;
    /// [`ShardWriter`] finalizes through its own `finish_*` methods).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Process-unique suffix for shard temp files.
static SHARD_SEQ: AtomicU64 = AtomicU64::new(0);

/// A spill-capable byte sink: bytes accumulate in memory until
/// `spill_limit`, then flush to numbered shard files next to the final
/// destination (or the system temp dir). Finishing replays every shard in
/// write order and removes them.
pub struct ShardWriter {
    buf: Vec<u8>,
    spill_limit: usize,
    peak_resident: usize,
    shard_dir: PathBuf,
    shard_tag: u64,
    shards: Vec<PathBuf>,
}

impl ShardWriter {
    /// A writer spilling shards into `shard_dir` once the resident buffer
    /// exceeds `spill_limit` bytes (0 spills on every flush boundary).
    pub fn new(shard_dir: impl Into<PathBuf>, spill_limit: usize) -> Self {
        ShardWriter {
            buf: Vec::new(),
            spill_limit,
            peak_resident: 0,
            shard_dir: shard_dir.into(),
            shard_tag: SHARD_SEQ.fetch_add(1, Ordering::Relaxed),
            shards: Vec::new(),
        }
    }

    /// Bytes currently resident in memory (excludes spilled shards).
    pub fn resident_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Most bytes ever resident at once — the writer's true memory
    /// footprint, bounded by `max(spill_limit, largest single write)`.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    /// Number of shards spilled so far.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let path = self.shard_dir.join(format!(
            ".seqhide-shard-{}-{}-{}",
            std::process::id(),
            self.shard_tag,
            self.shards.len()
        ));
        fs::write(&path, &self.buf)?;
        self.shards.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Replays every shard (in order) plus the resident tail into `out`,
    /// removing shards as they drain.
    fn drain_into(&mut self, out: &mut impl Write) -> io::Result<()> {
        for shard in std::mem::take(&mut self.shards) {
            let mut f = File::open(&shard)?;
            io::copy(&mut f, out)?;
            fs::remove_file(&shard)?;
        }
        out.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Concatenates all output into `path`. The file is written in one
    /// pass at the end, so a failed run never leaves a partial release.
    pub fn finish_to_path(mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        self.drain_into(&mut out)?;
        out.flush()
    }

    /// Concatenates all output into a `String` (lossless for our text
    /// formats, which are valid UTF-8 by construction). This necessarily
    /// materializes the whole output; callers wanting bounded memory end
    /// to end should use [`ShardWriter::finish_to_path`].
    pub fn finish_to_string(mut self) -> io::Result<String> {
        let mut bytes = Vec::new();
        self.drain_into(&mut bytes)?;
        String::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl Write for ShardWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        // Spill *before* extending when the incoming slice would push the
        // buffer past the limit: a single large write (one long itemset
        // line, say) must not stack on top of an already-full buffer.
        // Peak residency is max(spill_limit, len of the largest write),
        // never their sum.
        if !self.buf.is_empty() && self.buf.len() + bytes.len() > self.spill_limit {
            self.spill()?;
        }
        self.buf.extend_from_slice(bytes);
        self.peak_resident = self.peak_resident.max(self.buf.len());
        if self.buf.len() > self.spill_limit {
            self.spill()?;
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        // Abandoned mid-run (error path): remove stray shards.
        for shard in &self.shards {
            let _ = fs::remove_file(shard);
        }
    }
}

/// Drains `reader` into a [`SequenceDb`] (test/debug convenience; defeats
/// the purpose of streaming for large inputs).
pub fn collect_db<R: BufRead>(reader: &mut SeqReader<R>) -> io::Result<SequenceDb> {
    let mut alphabet = Alphabet::new();
    let mut sequences = Vec::new();
    while let Some(t) = reader.next_seq(&mut alphabet)? {
        sequences.push(t);
    }
    Ok(SequenceDb::from_parts(alphabet, sequences))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "# trucks\na b c\n\n  b Δ c  \nc\n";

    #[test]
    fn reader_matches_in_memory_parse() {
        let db = SequenceDb::parse(TEXT);
        let mut reader = SeqReader::new(TEXT.as_bytes());
        let streamed = collect_db(&mut reader).unwrap();
        assert_eq!(streamed.len(), db.len());
        assert_eq!(streamed.to_text(), db.to_text());
        assert_eq!(streamed.alphabet().len(), db.alphabet().len());
    }

    #[test]
    fn writer_matches_to_text() {
        let db = SequenceDb::parse(TEXT);
        let mut out = Vec::new();
        {
            let mut w = SeqWriter::new(&mut out);
            for t in db.sequences() {
                w.write_seq(db.alphabet(), t).unwrap();
            }
        }
        assert_eq!(String::from_utf8(out).unwrap(), db.to_text());
    }

    #[test]
    fn reader_roundtrips_through_file() {
        let dir = std::env::temp_dir().join("seqhide-stream-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.seq");
        fs::write(&path, TEXT).unwrap();
        let mut reader = SeqReader::open(&path).unwrap();
        let db = collect_db(&mut reader).unwrap();
        assert_eq!(db.to_text(), SequenceDb::parse(TEXT).to_text());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn shard_writer_spills_and_reassembles() {
        let dir = std::env::temp_dir().join("seqhide-shard-test");
        fs::create_dir_all(&dir).unwrap();
        let mut w = ShardWriter::new(&dir, 8);
        let payload = "0123456789abcdef0123456789abcdef";
        for chunk in payload.as_bytes().chunks(5) {
            w.write_all(chunk).unwrap();
        }
        assert!(w.shard_count() >= 2, "spill limit not honored");
        assert!(w.resident_bytes() <= 8 + 5);
        assert_eq!(w.finish_to_string().unwrap(), payload);
    }

    #[test]
    fn shard_writer_peak_residency_is_bounded_by_limit_plus_chunk() {
        let dir = std::env::temp_dir().join("seqhide-shard-test-peak");
        fs::create_dir_all(&dir).unwrap();
        let spill_limit = 8;
        let mut w = ShardWriter::new(&dir, spill_limit);
        // A mixed workload whose largest single write (one long "line")
        // far exceeds the spill limit.
        let big = vec![b'x'; 100];
        let chunks: Vec<&[u8]> = vec![b"abcde", b"fg", &big, b"hij", &big, b"k"];
        let max_chunk = chunks.iter().map(|c| c.len()).max().unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            w.write_all(chunk).unwrap();
            assert!(
                w.resident_bytes() <= spill_limit + max_chunk,
                "resident {} blew past limit {} + max chunk {}",
                w.resident_bytes(),
                spill_limit,
                max_chunk
            );
            expected.extend_from_slice(chunk);
        }
        // The stronger bound the spill-before-extend order guarantees:
        // a large write never stacks on top of an already-full buffer.
        assert!(
            w.peak_resident_bytes() <= spill_limit.max(max_chunk),
            "peak resident {} exceeds max(spill_limit {}, max chunk {})",
            w.peak_resident_bytes(),
            spill_limit,
            max_chunk
        );
        assert_eq!(w.finish_to_string().unwrap().as_bytes(), &expected[..]);
    }

    #[test]
    fn shard_writer_small_output_never_touches_disk() {
        let dir = std::env::temp_dir().join("seqhide-shard-test");
        fs::create_dir_all(&dir).unwrap();
        let mut w = ShardWriter::new(&dir, 1 << 20);
        w.write_all(b"tiny").unwrap();
        assert_eq!(w.shard_count(), 0);
        assert_eq!(w.finish_to_string().unwrap(), "tiny");
    }

    #[test]
    fn shard_writer_finishes_to_path() {
        let dir = std::env::temp_dir().join("seqhide-shard-test-path");
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("release.seq");
        let mut w = ShardWriter::new(&dir, 4);
        w.write_all(b"alpha beta\ngamma\n").unwrap();
        w.finish_to_path(&out).unwrap();
        assert_eq!(fs::read_to_string(&out).unwrap(), "alpha beta\ngamma\n");
        // shards were cleaned up
        let strays = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with(".seqhide-shard-")
            })
            .count();
        assert_eq!(strays, 0);
        fs::remove_file(out).unwrap();
    }
}
