//! # seqhide-data
//!
//! Data substrate for the experiments of *Hiding Sequences* (ICDE 2007):
//! a 2-D trajectory simulator, the paper's 10×10 grid discretization, and
//! seeded generators reproducing the statistical shape of the paper's two
//! datasets.
//!
//! ## Substitution note (see DESIGN.md §4)
//!
//! The paper evaluates on (a) **TRUCKS** — 273 real truck trajectories from
//! Frentzos et al. (the paper's ref.\ \[12\]) — and (b) **SYNTHETIC** — 300
//! trajectories from the authors' in-house generator (ref.\ \[15\]). Neither
//! artifact is available, so
//! [`trucks_like`] and [`synthetic_like`] synthesize datasets matched on
//! every property the algorithms can see: database size, mean sequence
//! length, the 10×10-grid alphabet of 100 `XiYj` symbols, and — via
//! rejection sampling — the paper's exact sensitive-pattern supports
//! (36/38, disjunction 66 for TRUCKS; 99/172, disjunction 200 for
//! SYNTHETIC).
//!
//! Additional generators ([`random_db`], [`zipf_db`], [`markov_db`]) supply
//! scale/stress workloads for benches and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod generate;
pub mod grid;
pub mod io;
pub mod random;
pub mod store;
pub mod stream;
pub mod trajectory;

pub use generate::{synthetic_like, trucks_like, Dataset};
pub use grid::Grid;
pub use random::{markov_db, random_db, zipf_db};
pub use store::{ShardStore, ShardStoreReader, ShardStoreWriter};
pub use stream::{
    ItemsetCodec, PlainCodec, SeqReader, SeqWriter, ShardWriter, StreamCodec, TimedCodec,
};
pub use trajectory::{wander, waypoint_trajectory, Point};
