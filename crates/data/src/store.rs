//! Persistent, immutable dataset store: the on-disk half of the serve
//! registry.
//!
//! A [`ShardStore`] holds one sequence database as a single file of
//! [`compress`]ed shards plus a footer index, so a server can:
//!
//! * re-attach standing datasets across restarts without re-shipping
//!   them over the wire (`serve --data-dir`);
//! * stream databases larger than RAM shard-by-shard through the
//!   two-pass sanitization path, with exactly one decompressed shard
//!   resident at a time;
//! * seek pass 2 back to the start cheaply (each [`ShardStore::reader`] call is an
//!   independent cursor over the same immutable file).
//!
//! ## File format (`*.sqds`)
//!
//! ```text
//! "SQDS1\n"                                  6-byte magic
//! shard 0 .. shard N-1                       compress::compress() output, back to back
//! footer: N × { offset, compressed_len,      4 × u64 LE per shard
//!               raw_len, sequence_count }
//! trailer: shard_count, total_raw_bytes,     5 × u64 LE + 8-byte end magic
//!          total_sequences, footer_offset,
//!          "SQDSEND1"
//! ```
//!
//! Everything is written to a temp file and renamed into place, so a
//! crash mid-write never leaves a half-readable store. The raw text
//! round-trips byte-exactly: `ShardStore` is a container, not a parser
//! — codec-level concerns (itemsets, timestamps) stay in
//! [`crate::stream`].
//!
//! Open stores keep a live [`File`] handle, so on POSIX an unlink (the
//! registry's `unload`) does not disturb readers mid-stream: the inode
//! stays alive until the last handle drops.

use std::fs::{self, File};
use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::compress;

const MAGIC: &[u8; 6] = b"SQDS1\n";
const END_MAGIC: &[u8; 8] = b"SQDSEND1";

/// Raw bytes per shard before the writer cuts a new one (always at a
/// line boundary, so a shard is independently meaningful text).
pub const DEFAULT_SHARD_RAW_BYTES: usize = 4 * 1024 * 1024;

/// Index entry for one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardMeta {
    /// Byte offset of the compressed shard within the store file.
    pub offset: u64,
    /// Compressed length in bytes.
    pub compressed_len: u64,
    /// Decompressed length in bytes.
    pub raw_len: u64,
    /// Number of data lines (non-blank, non-`#`) in the shard.
    pub sequence_count: u64,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt dataset store: {what}"),
    )
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Builds a store file incrementally from database text.
///
/// Feed text in arbitrary chunks with [`write`](Self::write) (it cuts
/// shards at line boundaries), then [`commit`](Self::commit) to
/// atomically rename the finished store into place. Dropping an
/// uncommitted writer removes the temp file.
pub struct ShardStoreWriter {
    final_path: PathBuf,
    tmp_path: PathBuf,
    file: Option<File>,
    /// Raw text accumulated for the shard under construction.
    pending: Vec<u8>,
    shard_raw_bytes: usize,
    shards: Vec<ShardMeta>,
    offset: u64,
    total_raw: u64,
    total_seqs: u64,
}

impl ShardStoreWriter {
    /// Starts a store at `path` (written as `path` + `.tmp` until
    /// commit) with the default shard size.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::with_shard_size(path, DEFAULT_SHARD_RAW_BYTES)
    }

    /// Starts a store with an explicit raw-bytes-per-shard cut point
    /// (tests use tiny shards to exercise multi-shard paths).
    pub fn with_shard_size(path: &Path, shard_raw_bytes: usize) -> io::Result<Self> {
        let tmp_path = {
            let mut name = path.as_os_str().to_os_string();
            name.push(".tmp");
            PathBuf::from(name)
        };
        let mut file = File::create(&tmp_path)?;
        file.write_all(MAGIC)?;
        Ok(ShardStoreWriter {
            final_path: path.to_path_buf(),
            tmp_path,
            file: Some(file),
            pending: Vec::new(),
            shard_raw_bytes: shard_raw_bytes.max(1),
            shards: Vec::new(),
            offset: MAGIC.len() as u64,
            total_raw: 0,
            total_seqs: 0,
        })
    }

    /// Appends a chunk of database text (need not end at a line
    /// boundary — shard cuts only happen at `\n`).
    pub fn write(&mut self, chunk: &[u8]) -> io::Result<()> {
        self.pending.extend_from_slice(chunk);
        while self.pending.len() >= self.shard_raw_bytes {
            // Cut at the last newline within the pending buffer so a
            // line never straddles shards; if none, keep accumulating
            // (one pathological line = one oversized shard).
            let Some(cut) = self.pending[..].iter().rposition(|&b| b == b'\n') else {
                break;
            };
            self.flush_shard(cut + 1)?;
            if self.pending.len() < self.shard_raw_bytes {
                break;
            }
        }
        Ok(())
    }

    fn flush_shard(&mut self, upto: usize) -> io::Result<()> {
        if upto == 0 {
            return Ok(());
        }
        let raw: Vec<u8> = self.pending.drain(..upto).collect();
        let seqs = count_sequences(&raw);
        let packed = compress::compress(&raw);
        let file = self.file.as_mut().expect("writer already committed");
        file.write_all(&packed)?;
        self.shards.push(ShardMeta {
            offset: self.offset,
            compressed_len: packed.len() as u64,
            raw_len: raw.len() as u64,
            sequence_count: seqs,
        });
        self.offset += packed.len() as u64;
        self.total_raw += raw.len() as u64;
        self.total_seqs += seqs;
        Ok(())
    }

    /// Writes the footer and atomically renames the store into place,
    /// returning the opened store.
    pub fn commit(mut self) -> io::Result<ShardStore> {
        let upto = self.pending.len();
        self.flush_shard(upto)?;
        let footer_offset = self.offset;
        let mut tail = Vec::with_capacity(self.shards.len() * 32 + 48);
        for shard in &self.shards {
            push_u64(&mut tail, shard.offset);
            push_u64(&mut tail, shard.compressed_len);
            push_u64(&mut tail, shard.raw_len);
            push_u64(&mut tail, shard.sequence_count);
        }
        push_u64(&mut tail, self.shards.len() as u64);
        push_u64(&mut tail, self.total_raw);
        push_u64(&mut tail, self.total_seqs);
        push_u64(&mut tail, footer_offset);
        tail.extend_from_slice(END_MAGIC);
        let mut file = self.file.take().expect("writer already committed");
        file.write_all(&tail)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&self.tmp_path, &self.final_path)?;
        ShardStore::open(&self.final_path)
    }
}

impl Drop for ShardStoreWriter {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

fn count_sequences(raw: &[u8]) -> u64 {
    let mut count = 0u64;
    for line in raw.split(|&b| b == b'\n') {
        let trimmed = line
            .iter()
            .position(|b| !b.is_ascii_whitespace())
            .map(|at| &line[at..]);
        match trimmed {
            Some(rest) if rest.first() != Some(&b'#') => count += 1,
            _ => {}
        }
    }
    count
}

/// An open, immutable dataset store.
///
/// Clone-free sharing: wrap it in an `Arc` and hand out
/// [`reader`](Self::reader) cursors — each is an independent handle
/// over the same file, so concurrent streams (or pass 1 + pass 2 of
/// the streaming sanitizer) never contend on a seek position.
pub struct ShardStore {
    path: PathBuf,
    file: File,
    shards: Vec<ShardMeta>,
    total_raw: u64,
    total_seqs: u64,
}

impl ShardStore {
    /// Opens and validates a store file, keeping a live handle.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let trailer_len = (8 * 4 + END_MAGIC.len()) as u64;
        if len < MAGIC.len() as u64 + trailer_len {
            return Err(corrupt("file shorter than magic + trailer"));
        }
        let mut magic = [0u8; 6];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic (not a .sqds file)"));
        }
        file.seek(SeekFrom::End(-(trailer_len as i64)))?;
        let mut trailer = vec![0u8; trailer_len as usize];
        file.read_exact(&mut trailer)?;
        if &trailer[32..] != END_MAGIC {
            return Err(corrupt("bad end magic (truncated write?)"));
        }
        let shard_count = read_u64(&trailer, 0);
        let total_raw = read_u64(&trailer, 8);
        let total_seqs = read_u64(&trailer, 16);
        let footer_offset = read_u64(&trailer, 24);
        let footer_len = shard_count
            .checked_mul(32)
            .ok_or_else(|| corrupt("shard count overflows"))?;
        if footer_offset
            .checked_add(footer_len)
            .is_none_or(|end| end != len - trailer_len)
        {
            return Err(corrupt("footer does not abut the trailer"));
        }
        file.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        let mut shards = Vec::with_capacity(shard_count as usize);
        let mut expect_offset = MAGIC.len() as u64;
        let mut sum_raw = 0u64;
        let mut sum_seqs = 0u64;
        for i in 0..shard_count as usize {
            let meta = ShardMeta {
                offset: read_u64(&footer, i * 32),
                compressed_len: read_u64(&footer, i * 32 + 8),
                raw_len: read_u64(&footer, i * 32 + 16),
                sequence_count: read_u64(&footer, i * 32 + 24),
            };
            if meta.offset != expect_offset {
                return Err(corrupt("shard offsets are not contiguous"));
            }
            expect_offset += meta.compressed_len;
            sum_raw += meta.raw_len;
            sum_seqs += meta.sequence_count;
            shards.push(meta);
        }
        if expect_offset != footer_offset {
            return Err(corrupt("shards do not fill the data region"));
        }
        if sum_raw != total_raw || sum_seqs != total_seqs {
            return Err(corrupt("trailer totals disagree with the footer"));
        }
        Ok(ShardStore {
            path: path.to_path_buf(),
            file,
            shards,
            total_raw,
            total_seqs,
        })
    }

    /// The path the store was opened from (may already be unlinked).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Decompressed size of the whole database in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.total_raw
    }

    /// Number of data lines (sequences) across all shards.
    pub fn sequences(&self) -> u64 {
        self.total_seqs
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// On-disk size of the store file in bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    /// A fresh `BufRead` cursor over the decompressed database text.
    ///
    /// Each reader clones the live handle, so it works even after the
    /// file has been unlinked, and never moves another reader's
    /// position.
    pub fn reader(&self) -> io::Result<ShardStoreReader> {
        Ok(ShardStoreReader {
            file: self.file.try_clone()?,
            shards: self.shards.clone(),
            next_shard: 0,
            current: Vec::new(),
            pos: 0,
        })
    }

    /// Materializes the full database text (callers gate on
    /// [`raw_bytes`](Self::raw_bytes) first).
    pub fn read_to_string(&self) -> io::Result<String> {
        let mut reader = self.reader()?;
        let mut text = String::with_capacity(self.total_raw as usize);
        reader.read_to_string(&mut text)?;
        Ok(text)
    }
}

/// Streaming cursor over a [`ShardStore`]: decompresses one shard at a
/// time, so residency is one shard's raw bytes regardless of dataset
/// size.
pub struct ShardStoreReader {
    file: File,
    shards: Vec<ShardMeta>,
    next_shard: usize,
    current: Vec<u8>,
    pos: usize,
}

impl ShardStoreReader {
    fn load_next_shard(&mut self) -> io::Result<bool> {
        let Some(meta) = self.shards.get(self.next_shard).copied() else {
            return Ok(false);
        };
        self.next_shard += 1;
        self.file.seek(SeekFrom::Start(meta.offset))?;
        let mut packed = vec![0u8; meta.compressed_len as usize];
        self.file.read_exact(&mut packed)?;
        let raw = compress::decompress(&packed)?;
        if raw.len() as u64 != meta.raw_len {
            return Err(corrupt("shard raw length disagrees with the footer"));
        }
        self.current = raw;
        self.pos = 0;
        Ok(true)
    }
}

impl Read for ShardStoreReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ShardStoreReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        while self.pos >= self.current.len() {
            if !self.load_next_shard()? {
                return Ok(&[]);
            }
        }
        Ok(&self.current[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.current.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "seqhide-store-test-{}-{tag}.sqds",
            std::process::id()
        ));
        p
    }

    fn build(path: &Path, text: &str, shard_bytes: usize) -> ShardStore {
        let mut writer = ShardStoreWriter::with_shard_size(path, shard_bytes).unwrap();
        // Feed in awkward chunk sizes to exercise mid-line boundaries.
        for chunk in text.as_bytes().chunks(7) {
            writer.write(chunk).unwrap();
        }
        writer.commit().unwrap()
    }

    #[test]
    fn roundtrips_byte_exact_across_many_small_shards() {
        let path = tmp_path("roundtrip");
        let mut text = String::from("# header comment\n\n");
        for i in 0..500 {
            text.push_str(&format!("X{}Y{} X2Y7 X3Y7 X{}Y6\n", i % 10, i % 7, i % 9));
        }
        let store = build(&path, &text, 256);
        assert!(store.shard_count() > 3, "tiny shards should yield several");
        assert_eq!(store.raw_bytes(), text.len() as u64);
        assert_eq!(store.sequences(), 500);
        assert_eq!(store.read_to_string().unwrap(), text);
        // Streaming line-by-line sees the same lines as the source text.
        let mut reader = store.reader().unwrap();
        let mut line = String::new();
        let mut got = Vec::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            got.push(line.clone());
            line.clear();
        }
        let want: Vec<String> = text.split_inclusive('\n').map(String::from).collect();
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shards_cut_only_at_line_boundaries() {
        let path = tmp_path("boundaries");
        let text = "abcdefghij\n".repeat(100);
        let store = build(&path, &text, 64);
        let mut reader = store.reader().unwrap();
        // Every fill_buf window must start at a line start: decompress
        // shard-by-shard and check the last byte of each shard.
        loop {
            let window = reader.fill_buf().unwrap();
            if window.is_empty() {
                break;
            }
            assert_eq!(window.last(), Some(&b'\n'), "shard split a line");
            let n = window.len();
            reader.consume(n);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn readers_survive_unlink_and_are_independent() {
        let path = tmp_path("unlink");
        let text = "one two three\nfour five\n".repeat(50);
        let store = build(&path, &text, 128);
        let mut first = store.reader().unwrap();
        std::fs::remove_file(&path).unwrap(); // registry unload
        let mut a = String::new();
        first.read_to_string(&mut a).unwrap();
        let mut second = store.reader().unwrap(); // opened post-unlink
        let mut b = String::new();
        second.read_to_string(&mut b).unwrap();
        assert_eq!(a, text);
        assert_eq!(b, text);
    }

    #[test]
    fn no_trailing_newline_still_roundtrips() {
        let path = tmp_path("notrail");
        let text = "alpha beta\ngamma delta"; // final line unterminated
        let store = build(&path, text, 8);
        assert_eq!(store.read_to_string().unwrap(), text);
        assert_eq!(store.sequences(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_and_mangled_files_are_rejected() {
        let path = tmp_path("mangle");
        let store = build(&path, &"line of text here\n".repeat(40), 64);
        drop(store);
        let good = std::fs::read(&path).unwrap();
        // Truncation loses the trailer.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(ShardStore::open(&path).is_err());
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'Z';
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardStore::open(&path).is_err());
        // Restore and confirm the checks pass again.
        std::fs::write(&path, &good).unwrap();
        assert!(ShardStore::open(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_writer_leaves_no_temp_file() {
        let path = tmp_path("abort");
        {
            let mut writer = ShardStoreWriter::create(&path).unwrap();
            writer.write(b"half a data").unwrap();
        } // dropped without commit
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        assert!(!path.exists());
    }
}
