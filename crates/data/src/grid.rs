//! The paper's spatial discretization: a regular grid over the unit square
//! whose cells are named `XiYj` (`i, j ∈ 1..=nx/ny`), giving the 100-symbol
//! alphabet of the experiments.

use seqhide_types::{Alphabet, Sequence, Symbol};

use crate::trajectory::Point;

/// A regular `nx × ny` grid over `[0,1]²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// Number of columns (the `X` coordinate).
    pub nx: usize,
    /// Number of rows (the `Y` coordinate).
    pub ny: usize,
}

impl Grid {
    /// The paper's 10×10 grid.
    pub fn paper() -> Self {
        Grid { nx: 10, ny: 10 }
    }

    /// Creates a grid.
    ///
    /// # Panics
    /// Panics on a zero dimension.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        Grid { nx, ny }
    }

    /// Interns all `nx · ny` cell names into a fresh alphabet, in row-major
    /// `X1Y1, X2Y1, …` order — the full `Σ` of the experiments, present even
    /// for cells no trajectory visits.
    pub fn alphabet(&self) -> Alphabet {
        let mut a = Alphabet::new();
        for j in 1..=self.ny {
            for i in 1..=self.nx {
                a.intern(&Self::cell_name(i, j));
            }
        }
        a
    }

    /// The paper's cell naming, 1-based: `XiYj`.
    pub fn cell_name(i: usize, j: usize) -> String {
        format!("X{i}Y{j}")
    }

    /// The 1-based cell indices containing `p` (points outside `[0,1]²`
    /// clamp to the border cells).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let clamp = |v: f64, n: usize| -> usize {
            let idx = (v * n as f64).floor() as isize;
            idx.clamp(0, n as isize - 1) as usize + 1
        };
        (clamp(p.0, self.nx), clamp(p.1, self.ny))
    }

    /// The centre point of 1-based cell `(i, j)`.
    pub fn cell_center(&self, i: usize, j: usize) -> Point {
        (
            (i as f64 - 0.5) / self.nx as f64,
            (j as f64 - 0.5) / self.ny as f64,
        )
    }

    /// The symbol of cell `(i, j)` in an alphabet produced by
    /// [`Grid::alphabet`].
    pub fn symbol(&self, alphabet: &Alphabet, i: usize, j: usize) -> Symbol {
        alphabet
            .get(&Self::cell_name(i, j))
            .expect("cell name interned by Grid::alphabet")
    }

    /// Discretizes a trajectory into the sequence of visited cells,
    /// collapsing consecutive stays in the same cell (the usual trajectory
    /// → event-sequence conversion; the paper reports 20.1 / 6.8 cells per
    /// trajectory after this collapse).
    pub fn discretize(&self, trajectory: &[Point], alphabet: &Alphabet) -> Sequence {
        let mut out: Vec<Symbol> = Vec::new();
        let mut last: Option<(usize, usize)> = None;
        for &p in trajectory {
            let cell = self.cell_of(p);
            if last != Some(cell) {
                out.push(self.symbol(alphabet, cell.0, cell.1));
                last = Some(cell);
            }
        }
        Sequence::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_100_cells() {
        let g = Grid::paper();
        let a = g.alphabet();
        assert_eq!(a.len(), 100);
        assert!(a.get("X1Y1").is_some());
        assert!(a.get("X10Y10").is_some());
        assert!(a.get("X0Y5").is_none());
        assert!(a.get("X11Y1").is_none());
    }

    #[test]
    fn cell_of_maps_quadrants() {
        let g = Grid::paper();
        assert_eq!(g.cell_of((0.05, 0.05)), (1, 1));
        assert_eq!(g.cell_of((0.95, 0.95)), (10, 10));
        assert_eq!(g.cell_of((0.55, 0.25)), (6, 3));
        // boundary and out-of-range clamping
        assert_eq!(g.cell_of((0.0, 0.0)), (1, 1));
        assert_eq!(g.cell_of((1.0, 1.0)), (10, 10));
        assert_eq!(g.cell_of((-0.3, 1.7)), (1, 10));
    }

    #[test]
    fn center_roundtrips_through_cell_of() {
        let g = Grid::new(7, 3);
        for i in 1..=7 {
            for j in 1..=3 {
                assert_eq!(g.cell_of(g.cell_center(i, j)), (i, j));
            }
        }
    }

    #[test]
    fn discretize_collapses_stays() {
        let g = Grid::paper();
        let a = g.alphabet();
        // wander inside X1Y1, then jump to X2Y1 and stay, then back
        let traj = vec![
            (0.01, 0.01),
            (0.05, 0.08),
            (0.15, 0.05),
            (0.19, 0.02),
            (0.05, 0.05),
        ];
        let seq = g.discretize(&traj, &a);
        assert_eq!(seq.len(), 3);
        assert_eq!(a.render(seq[0]), "X1Y1");
        assert_eq!(a.render(seq[1]), "X2Y1");
        assert_eq!(a.render(seq[2]), "X1Y1");
    }

    #[test]
    fn discretize_empty_trajectory() {
        let g = Grid::paper();
        let a = g.alphabet();
        assert!(g.discretize(&[], &a).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_rejected() {
        let _ = Grid::new(0, 5);
    }
}
