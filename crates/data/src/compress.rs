//! Shard compression for the persistent dataset store: a tiny, std-only
//! byte-oriented LZ codec.
//!
//! The build environment has no registry access, so no deflate/zstd —
//! this is a deliberately small LZ77 variant tuned for the repetitive
//! sequence-database text the store holds (grid symbols like `X2Y7`
//! recur constantly, so back-references pay off quickly):
//!
//! * greedy matcher over a 4-byte rolling hash, single-slot table;
//! * matches of 4..=131 bytes, distances up to 64 KiB, varint-encoded;
//! * literal runs of up to 128 bytes behind a one-byte control token.
//!
//! The format is self-delimiting given the declared raw length, and
//! [`decompress`] validates every token against it, so a truncated or
//! corrupted shard is an error, never garbage output. Ratios are modest
//! (2–4× on sequence text) — the goal is bounded disk for standing
//! datasets, not competition with real entropy coders.

use std::io;

/// Shortest back-reference worth a token (control byte + 1–3 distance
/// bytes must beat copying the bytes literally).
const MIN_MATCH: usize = 4;
/// Longest back-reference one token encodes (`0x7f + MIN_MATCH`).
const MAX_MATCH: usize = 131;
/// Longest literal run one token encodes.
const MAX_LITERAL_RUN: usize = 128;
/// Matcher window: distances beyond this are not representable cheaply
/// enough to bother with.
const MAX_DISTANCE: usize = 64 * 1024;
/// Hash table slots (power of two).
const HASH_SLOTS: usize = 1 << 14;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> 18) as usize & (HASH_SLOTS - 1)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| corrupt("varint runs past the shard"))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint wider than 64 bits"));
        }
    }
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt shard: {what}"))
}

fn flush_literals(out: &mut Vec<u8>, raw: &[u8], mut from: usize, to: usize) {
    while from < to {
        let run = (to - from).min(MAX_LITERAL_RUN);
        out.push((run - 1) as u8);
        out.extend_from_slice(&raw[from..from + run]);
        from += run;
    }
}

/// Compresses `raw` into the shard token format, raw length first.
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    push_varint(&mut out, raw.len() as u64);
    let mut table = vec![usize::MAX; HASH_SLOTS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    while pos + MIN_MATCH <= raw.len() {
        let slot = hash4(&raw[pos..]);
        let candidate = table[slot];
        table[slot] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= MAX_DISTANCE
            && raw[candidate..candidate + MIN_MATCH] == raw[pos..pos + MIN_MATCH];
        if !found {
            pos += 1;
            continue;
        }
        let mut len = MIN_MATCH;
        let limit = (raw.len() - pos).min(MAX_MATCH);
        while len < limit && raw[candidate + len] == raw[pos + len] {
            len += 1;
        }
        flush_literals(&mut out, raw, literal_start, pos);
        out.push(0x80 | (len - MIN_MATCH) as u8);
        push_varint(&mut out, (pos - candidate) as u64);
        pos += len;
        literal_start = pos;
    }
    flush_literals(&mut out, raw, literal_start, raw.len());
    out
}

/// Decompresses one shard produced by [`compress`], validating every
/// token against the declared raw length.
pub fn decompress(shard: &[u8]) -> io::Result<Vec<u8>> {
    let mut pos = 0usize;
    let raw_len = read_varint(shard, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    while pos < shard.len() {
        let control = shard[pos];
        pos += 1;
        if control & 0x80 == 0 {
            let run = control as usize + 1;
            let end = pos
                .checked_add(run)
                .filter(|&e| e <= shard.len())
                .ok_or_else(|| corrupt("literal run past the shard"))?;
            out.extend_from_slice(&shard[pos..end]);
            pos = end;
        } else {
            let len = (control & 0x7f) as usize + MIN_MATCH;
            let distance = read_varint(shard, &mut pos)? as usize;
            if distance == 0 || distance > out.len() {
                return Err(corrupt("back-reference before the start"));
            }
            let from = out.len() - distance;
            // Overlapping copies are legal (distance < len repeats).
            for i in 0..len {
                let byte = out[from + i];
                out.push(byte);
            }
        }
        if out.len() > raw_len {
            return Err(corrupt("output exceeds the declared raw length"));
        }
    }
    if out.len() != raw_len {
        return Err(corrupt("output shorter than the declared raw length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) {
        let packed = compress(raw);
        assert_eq!(decompress(&packed).unwrap(), raw, "len {}", raw.len());
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaaa"); // shortest possible match, overlapping copy
        roundtrip(&vec![b'z'; 10_000]); // long run, chained matches
        roundtrip("Δ mark Δ mark Δ mark\n".as_bytes());
    }

    #[test]
    fn roundtrips_sequence_text_and_shrinks_it() {
        let line = "X2Y7 X3Y7 X4Y6 X5Y5 X2Y7\n";
        let text: String = line.repeat(400);
        let packed = compress(text.as_bytes());
        assert!(
            packed.len() < text.len() / 2,
            "repetitive sequence text should compress well: {} vs {}",
            packed.len(),
            text.len()
        );
        assert_eq!(decompress(&packed).unwrap(), text.as_bytes());
    }

    #[test]
    fn roundtrips_pseudorandom_bytes() {
        // splitmix64-ish stream: incompressible, exercises literal paths.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut raw = Vec::new();
        for _ in 0..5_000 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            raw.extend_from_slice(&z.to_le_bytes());
        }
        roundtrip(&raw);
    }

    #[test]
    fn corrupt_shards_error_instead_of_garbage() {
        let packed = compress(b"hello hello hello hello");
        // truncation
        assert!(decompress(&packed[..packed.len() - 2]).is_err());
        // raw-length lie
        let mut lying = packed.clone();
        lying[0] = lying[0].wrapping_add(1);
        assert!(decompress(&lying).is_err());
        // back-reference before the start
        assert!(decompress(&[4, 0x80, 7]).is_err());
        // varint running past the end
        assert!(decompress(&[0xff]).is_err());
    }
}
