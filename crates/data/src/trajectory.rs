//! Continuous 2-D trajectory simulation: waypoint routes (vehicles following
//! roads/corridors) and free wandering (background traffic).

use rand::Rng;

/// A point in the unit square.
pub type Point = (f64, f64);

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Samples a trajectory that travels through `waypoints` in order:
/// piecewise-linear interpolation with `samples_per_leg` positions per leg
/// and Gaussian-ish jitter of magnitude `jitter` (sum of two uniforms —
/// close enough to normal for simulation and dependency-free).
///
/// The returned positions include each waypoint's neighbourhood, so a
/// trajectory built through cell centres reliably visits those cells when
/// `jitter` is small relative to the cell size.
pub fn waypoint_trajectory<R: Rng + ?Sized>(
    rng: &mut R,
    waypoints: &[Point],
    samples_per_leg: usize,
    jitter: f64,
) -> Vec<Point> {
    assert!(waypoints.len() >= 2, "a route needs at least two waypoints");
    assert!(samples_per_leg >= 1);
    let noise = |rng: &mut R| (rng.random::<f64>() + rng.random::<f64>() - 1.0) * jitter;
    let mut out = Vec::with_capacity((waypoints.len() - 1) * samples_per_leg + 1);
    for leg in waypoints.windows(2) {
        let (ax, ay) = leg[0];
        let (bx, by) = leg[1];
        for s in 0..samples_per_leg {
            let f = s as f64 / samples_per_leg as f64;
            out.push((
                clamp01(ax + (bx - ax) * f + noise(rng)),
                clamp01(ay + (by - ay) * f + noise(rng)),
            ));
        }
    }
    let last = *waypoints.last().expect("non-empty");
    out.push((clamp01(last.0 + noise(rng)), clamp01(last.1 + noise(rng))));
    out
}

/// Samples a free random walk of `steps` positions starting at `start`:
/// a direction performs a bounded random drift each step, positions clamp
/// to the unit square.
pub fn wander<R: Rng + ?Sized>(
    rng: &mut R,
    start: Point,
    steps: usize,
    step_len: f64,
) -> Vec<Point> {
    let mut out = Vec::with_capacity(steps);
    let mut pos = start;
    let mut dir: f64 = rng.random::<f64>() * std::f64::consts::TAU;
    for _ in 0..steps {
        out.push(pos);
        dir += (rng.random::<f64>() - 0.5) * 1.2; // drift up to ±0.6 rad
        pos = (
            clamp01(pos.0 + dir.cos() * step_len),
            clamp01(pos.1 + dir.sin() * step_len),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn waypoint_trajectory_visits_waypoints_without_jitter() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let wp = vec![(0.1, 0.1), (0.9, 0.1), (0.9, 0.9)];
        let traj = waypoint_trajectory(&mut rng, &wp, 10, 0.0);
        assert_eq!(traj.len(), 21);
        assert_eq!(traj[0], (0.1, 0.1));
        assert_eq!(traj[10], (0.9, 0.1));
        assert_eq!(*traj.last().unwrap(), (0.9, 0.9));
    }

    #[test]
    fn jitter_stays_bounded_and_in_square() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let wp = vec![(0.0, 0.0), (1.0, 1.0)];
        let traj = waypoint_trajectory(&mut rng, &wp, 50, 0.05);
        for &(x, y) in &traj {
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
        // jitter must actually perturb something
        assert!(traj.iter().any(|&p| p != (0.0, 0.0) && p != (1.0, 1.0)));
    }

    #[test]
    fn wander_has_requested_length_and_stays_inside() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let traj = wander(&mut rng, (0.5, 0.5), 40, 0.07);
        assert_eq!(traj.len(), 40);
        for &(x, y) in &traj {
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
        // it should actually move
        assert!(traj.iter().any(|&p| p != (0.5, 0.5)));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            wander(&mut rng, (0.2, 0.8), 10, 0.05)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn single_waypoint_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = waypoint_trajectory(&mut rng, &[(0.5, 0.5)], 5, 0.0);
    }
}
