//! Calibrated dataset generators reproducing the statistical shape of the
//! paper's TRUCKS and SYNTHETIC datasets (see the substitution note in the
//! crate docs and DESIGN.md §4).
//!
//! Construction: each dataset mixes **route** trajectories — waypoint paths
//! forced through a sensitive corridor's cell centres — with **background**
//! wanderers. Rejection sampling pins the sensitive supports to the paper's
//! exact values: a route trajectory is resampled until it supports exactly
//! the patterns its group requires (and not the others), a wanderer until
//! it supports none.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use seqhide_match::{is_subsequence, SensitiveSet};
use seqhide_types::{Alphabet, Sequence, SequenceDb};

use crate::grid::Grid;
use crate::trajectory::{wander, waypoint_trajectory, Point};

/// A generated dataset: the database, the paper's sensitive set for it, and
/// a display name.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Display name (`TRUCKS-like` / `SYNTHETIC-like`).
    pub name: &'static str,
    /// The sequence database over the 100-symbol grid alphabet.
    pub db: SequenceDb,
    /// The paper's sensitive patterns for this dataset.
    pub sensitive: SensitiveSet,
}

impl Dataset {
    /// Supports of each sensitive pattern plus their disjunction —
    /// the paper's Table 1 row for this dataset.
    pub fn support_table(&self) -> (Vec<usize>, usize) {
        let per: Vec<usize> = self
            .sensitive
            .iter()
            .map(|p| seqhide_match::support_of_pattern(&self.db, p))
            .collect();
        let disj = seqhide_match::support_of_set(&self.db, &self.sensitive);
        (per, disj)
    }
}

/// Group specification: how many trajectories must support exactly which
/// patterns (indices into the sensitive set).
struct Group {
    count: usize,
    /// Corridor cells to route through, in order (empty = wanderer).
    corridor: Vec<(usize, usize)>,
    /// Pattern indices this group must support.
    must: Vec<usize>,
}

struct SimParams {
    /// Random pre/post waypoints around the corridor.
    pre_post: usize,
    /// When set, pre/post waypoints are sampled within this radius of the
    /// corridor's endpoints instead of uniformly — producing the short
    /// local trips of the SYNTHETIC dataset (avg 6.8 cells) rather than the
    /// long hauls of TRUCKS (avg 20.1).
    local_radius: Option<f64>,
    samples_per_leg: usize,
    jitter: f64,
    /// Wanderer length in steps and step size.
    wander_steps: usize,
    wander_step_len: f64,
}

fn rand_point<R: Rng + ?Sized>(rng: &mut R) -> Point {
    (rng.random::<f64>(), rng.random::<f64>())
}

/// Generates one trajectory for `group`, resampling until its discretized
/// sequence supports exactly the required patterns.
fn sample_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &Grid,
    alphabet: &Alphabet,
    patterns: &[Sequence],
    group: &Group,
    params: &SimParams,
) -> Sequence {
    for _attempt in 0..10_000 {
        let traj = if group.corridor.is_empty() {
            let start = rand_point(rng);
            wander(rng, start, params.wander_steps, params.wander_step_len)
        } else {
            let mut waypoints: Vec<Point> = Vec::new();
            let first = group.corridor[0];
            let last = group.corridor[group.corridor.len() - 1];
            let anchor_point = |rng: &mut R, cell: (usize, usize)| match params.local_radius {
                None => rand_point(rng),
                Some(r) => {
                    let c = grid.cell_center(cell.0, cell.1);
                    (
                        (c.0 + (rng.random::<f64>() - 0.5) * 2.0 * r).clamp(0.0, 1.0),
                        (c.1 + (rng.random::<f64>() - 0.5) * 2.0 * r).clamp(0.0, 1.0),
                    )
                }
            };
            for _ in 0..params.pre_post {
                waypoints.push(anchor_point(rng, first));
            }
            for &(i, j) in &group.corridor {
                waypoints.push(grid.cell_center(i, j));
            }
            for _ in 0..params.pre_post {
                waypoints.push(anchor_point(rng, last));
            }
            waypoint_trajectory(rng, &waypoints, params.samples_per_leg, params.jitter)
        };
        let seq = grid.discretize(&traj, alphabet);
        let ok = patterns.iter().enumerate().all(|(idx, p)| {
            let supports = is_subsequence(p, &seq);
            supports == group.must.contains(&idx)
        });
        if ok {
            return seq;
        }
    }
    panic!("rejection sampling failed to satisfy group constraints");
}

fn build(
    name: &'static str,
    seed: u64,
    pattern_cells: &[&[(usize, usize)]],
    groups: &[Group],
    params: &SimParams,
) -> Dataset {
    let grid = Grid::paper();
    let alphabet = grid.alphabet();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let patterns: Vec<Sequence> = pattern_cells
        .iter()
        .map(|cells| {
            cells
                .iter()
                .map(|&(i, j)| grid.symbol(&alphabet, i, j))
                .collect()
        })
        .collect();
    let mut sequences: Vec<Sequence> = Vec::new();
    for group in groups {
        for _ in 0..group.count {
            sequences.push(sample_sequence(
                &mut rng, &grid, &alphabet, &patterns, group, params,
            ));
        }
    }
    // Interleave groups deterministically so group membership is not
    // recoverable from row order in the released data.
    let mut order: Vec<usize> = (0..sequences.len()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    let sequences: Vec<Sequence> = order.into_iter().map(|i| sequences[i].clone()).collect();
    Dataset {
        name,
        db: SequenceDb::from_parts(alphabet, sequences),
        sensitive: SensitiveSet::new(patterns),
    }
}

/// The TRUCKS-like dataset: 273 trajectories averaging ≈ 20 grid cells,
/// with `sup(⟨X6Y3 X7Y2⟩) = 36`, `sup(⟨X4Y3 X5Y3⟩) = 38` and disjunction
/// support 66 — the paper's Table 1 exactly.
pub fn trucks_like(seed: u64) -> Dataset {
    const A: &[(usize, usize)] = &[(6, 3), (7, 2)];
    const B: &[(usize, usize)] = &[(4, 3), (5, 3)];
    // 36 = 28 + 8, 38 = 30 + 8, 66 = 28 + 30 + 8.
    let both: Vec<(usize, usize)> = [A, B].concat();
    let groups = [
        Group {
            count: 28,
            corridor: A.to_vec(),
            must: vec![0],
        },
        Group {
            count: 30,
            corridor: B.to_vec(),
            must: vec![1],
        },
        Group {
            count: 8,
            corridor: both,
            must: vec![0, 1],
        },
        Group {
            count: 207,
            corridor: vec![],
            must: vec![],
        },
    ];
    let params = SimParams {
        pre_post: 2,
        local_radius: None,
        samples_per_leg: 30,
        jitter: 0.008,
        wander_steps: 150,
        wander_step_len: 0.014,
    };
    build("TRUCKS-like", seed, &[A, B], &groups, &params)
}

/// The SYNTHETIC-like dataset: 300 trajectories averaging ≈ 6.8 grid cells,
/// with `sup(⟨X2Y7 X3Y7⟩) = 99`, `sup(⟨X5Y7 X5Y6⟩) = 172` and disjunction
/// support 200 — the paper's Table 1 exactly.
pub fn synthetic_like(seed: u64) -> Dataset {
    const A: &[(usize, usize)] = &[(2, 7), (3, 7)];
    const B: &[(usize, usize)] = &[(5, 7), (5, 6)];
    // 99 = 28 + 71, 172 = 101 + 71, 200 = 28 + 101 + 71.
    let both: Vec<(usize, usize)> = [A, B].concat();
    let groups = [
        Group {
            count: 28,
            corridor: A.to_vec(),
            must: vec![0],
        },
        Group {
            count: 101,
            corridor: B.to_vec(),
            must: vec![1],
        },
        Group {
            count: 71,
            corridor: both,
            must: vec![0, 1],
        },
        Group {
            count: 100,
            corridor: vec![],
            must: vec![],
        },
    ];
    let params = SimParams {
        pre_post: 1,
        local_radius: Some(0.18),
        samples_per_leg: 18,
        jitter: 0.006,
        wander_steps: 42,
        wander_step_len: 0.012,
    };
    build("SYNTHETIC-like", seed, &[A, B], &groups, &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trucks_matches_paper_table() {
        let d = trucks_like(42);
        assert_eq!(d.db.len(), 273);
        let (per, disj) = d.support_table();
        assert_eq!(per, vec![36, 38]);
        assert_eq!(disj, 66);
    }

    #[test]
    fn trucks_average_length_near_paper() {
        let d = trucks_like(42);
        let stats = d.db.stats();
        assert_eq!(stats.alphabet_len, 100);
        assert!(
            (14.0..=27.0).contains(&stats.avg_len),
            "avg_len {} out of calibration band",
            stats.avg_len
        );
    }

    #[test]
    fn synthetic_matches_paper_table() {
        let d = synthetic_like(42);
        assert_eq!(d.db.len(), 300);
        let (per, disj) = d.support_table();
        assert_eq!(per, vec![99, 172]);
        assert_eq!(disj, 200);
    }

    #[test]
    fn synthetic_average_length_near_paper() {
        let d = synthetic_like(42);
        let stats = d.db.stats();
        assert!(
            (4.0..=10.5).contains(&stats.avg_len),
            "avg_len {} out of calibration band",
            stats.avg_len
        );
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = trucks_like(7);
        let b = trucks_like(7);
        let c = trucks_like(8);
        assert_eq!(a.db.to_text(), b.db.to_text());
        assert_ne!(a.db.to_text(), c.db.to_text());
        // supports stay pinned regardless of seed
        let (per, disj) = c.support_table();
        assert_eq!(per, vec![36, 38]);
        assert_eq!(disj, 66);
    }

    #[test]
    fn sensitive_patterns_use_paper_cells() {
        let d = trucks_like(1);
        let rendered: Vec<String> = d
            .sensitive
            .iter()
            .map(|p| p.seq().render(d.db.alphabet()))
            .collect();
        assert_eq!(rendered, vec!["⟨X6Y3 X7Y2⟩", "⟨X4Y3 X5Y3⟩"]);
        let d = synthetic_like(1);
        let rendered: Vec<String> = d
            .sensitive
            .iter()
            .map(|p| p.seq().render(d.db.alphabet()))
            .collect();
        assert_eq!(rendered, vec!["⟨X2Y7 X3Y7⟩", "⟨X5Y7 X5Y6⟩"]);
    }
}
