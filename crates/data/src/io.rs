//! Plain-text dataset IO.
//!
//! Format: one sequence per line, whitespace-separated symbol names; blank
//! lines and `#` comments ignored (the same format
//! [`SequenceDb::parse`] accepts). A deliberately boring format — diffable,
//! versionable, and loadable from any language — in place of a
//! serialization framework (see DESIGN.md §6).
//!
//! Representational limit shared by all three line formats: an **empty
//! sequence** renders as a blank line, which parsing skips — empty
//! sequences do not survive a text round-trip. Sanitization never creates
//! them (marking preserves length), so this only matters for hand-built
//! inputs.

use std::fs;
use std::io;
use std::path::Path;

use seqhide_types::{
    Alphabet, Itemset, ItemsetSequence, SequenceDb, Symbol, TimeTag, TimedEvent, TimedSequence,
};

/// Reads a database from a text file.
pub fn read_db(path: impl AsRef<Path>) -> io::Result<SequenceDb> {
    Ok(SequenceDb::parse(&fs::read_to_string(path)?))
}

/// Writes a database to a text file (marks render as `Δ`).
pub fn write_db(path: impl AsRef<Path>, db: &SequenceDb) -> io::Result<()> {
    fs::write(path, db.to_text())
}

/// Parses one (already trimmed, non-blank, non-comment) itemset-sequence
/// line: elements separated by whitespace, items within an element
/// separated by commas: `bread,milk beer` is `⟨{bread milk} {beer}⟩`.
/// `Δ` parses to a marked item slot.
pub fn parse_itemset_line(line: &str, alphabet: &mut Alphabet) -> ItemsetSequence {
    let elements = line
        .split_whitespace()
        .map(|elem| {
            Itemset::new(
                elem.split(',')
                    .filter(|w| !w.is_empty())
                    .map(|w| {
                        if w == "Δ" {
                            Symbol::MARK
                        } else {
                            alphabet.intern(w)
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    ItemsetSequence::new(elements)
}

/// Writes one itemset sequence as a [`parse_itemset_line`]-format line
/// (including the trailing newline).
pub fn write_itemset_line(
    alphabet: &Alphabet,
    t: &ItemsetSequence,
    out: &mut dyn io::Write,
) -> io::Result<()> {
    for (i, e) in t.elements().iter().enumerate() {
        if i > 0 {
            out.write_all(b" ")?;
        }
        for (j, &s) in e.items().iter().enumerate() {
            if j > 0 {
                out.write_all(b",")?;
            }
            out.write_all(alphabet.render(s).as_bytes())?;
        }
    }
    out.write_all(b"\n")
}

/// Parses an itemset-sequence database ([`parse_itemset_line`] per line;
/// blank lines and `#` comments ignored).
pub fn parse_itemset_db(text: &str) -> (Alphabet, Vec<ItemsetSequence>) {
    let mut alphabet = Alphabet::new();
    let db = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| parse_itemset_line(line, &mut alphabet))
        .collect();
    (alphabet, db)
}

/// Renders an itemset-sequence database in the format accepted by
/// [`parse_itemset_db`].
pub fn itemset_db_to_text(alphabet: &Alphabet, db: &[ItemsetSequence]) -> String {
    let mut out = Vec::new();
    for t in db {
        write_itemset_line(alphabet, t, &mut out).expect("write to Vec cannot fail");
    }
    String::from_utf8(out).expect("symbol names are valid UTF-8")
}

/// Parses one (already trimmed, non-blank, non-comment) timed-sequence
/// line: events as `symbol@tick` tokens, `login@0 search@15`. `Δ@t`
/// parses to a marked event at tick `t`. `lineno` is the 1-based file
/// line number used in error messages.
pub fn parse_timed_line(
    lineno: usize,
    line: &str,
    alphabet: &mut Alphabet,
) -> io::Result<TimedSequence> {
    let mut events = Vec::new();
    for token in line.split_whitespace() {
        let (name, tick) = token.rsplit_once('@').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: token '{token}' is not symbol@tick"),
            )
        })?;
        if name.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: empty symbol name in '{token}'"),
            ));
        }
        let time: TimeTag = tick.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: bad tick in '{token}'"),
            )
        })?;
        let symbol = if name == "Δ" {
            Symbol::MARK
        } else {
            alphabet.intern(name)
        };
        events.push(TimedEvent { symbol, time });
    }
    if !events.windows(2).all(|w| w[0].time <= w[1].time) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: time tags must be non-decreasing"),
        ));
    }
    Ok(TimedSequence::new(events))
}

/// Writes one timed sequence as a [`parse_timed_line`]-format line
/// (including the trailing newline).
pub fn write_timed_line(
    alphabet: &Alphabet,
    t: &TimedSequence,
    out: &mut dyn io::Write,
) -> io::Result<()> {
    for (i, e) in t.events().iter().enumerate() {
        if i > 0 {
            out.write_all(b" ")?;
        }
        write!(out, "{}@{}", alphabet.render(e.symbol), e.time)?;
    }
    out.write_all(b"\n")
}

/// Parses a timed-sequence database ([`parse_timed_line`] per line; blank
/// lines and `#` comments ignored).
pub fn parse_timed_db(text: &str) -> io::Result<(Alphabet, Vec<TimedSequence>)> {
    let mut alphabet = Alphabet::new();
    let mut db = Vec::new();
    for (lineno, line) in text
        .lines()
        .map(str::trim)
        .enumerate()
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
    {
        db.push(parse_timed_line(lineno + 1, line, &mut alphabet)?);
    }
    Ok((alphabet, db))
}

/// Renders a timed-sequence database in the format accepted by
/// [`parse_timed_db`].
pub fn timed_db_to_text(alphabet: &Alphabet, db: &[TimedSequence]) -> String {
    let mut out = Vec::new();
    for t in db {
        write_timed_line(alphabet, t, &mut out).expect("write to Vec cannot fail");
    }
    String::from_utf8(out).expect("symbol names are valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("seqhide-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.seq");
        let db = crate::random_db(11, 20, (1, 8), 9);
        write_db(&path, &db).unwrap();
        let back = read_db(&path).unwrap();
        assert_eq!(back.to_text(), db.to_text());
        assert_eq!(back.len(), db.len());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(read_db("/nonexistent/seqhide/file.seq").is_err());
    }

    #[test]
    fn itemset_db_roundtrip() {
        let (alphabet, db) = parse_itemset_db("bread,milk beer\n# note\ntea\n");
        assert_eq!(db.len(), 2);
        assert_eq!(db[0].len(), 2);
        assert_eq!(db[0].elements()[0].live_len(), 2);
        let text = itemset_db_to_text(&alphabet, &db);
        let (a2, db2) = parse_itemset_db(&text);
        assert_eq!(itemset_db_to_text(&a2, &db2), text);
    }

    #[test]
    fn itemset_marks_roundtrip() {
        let (alphabet, mut db) = parse_itemset_db("a,b c\n");
        let a = alphabet.get("a").unwrap();
        db[0].elements_mut()[0].mark_item(a);
        let text = itemset_db_to_text(&alphabet, &db);
        assert!(text.contains("Δ"));
        let (a2, db2) = parse_itemset_db(&text);
        assert_eq!(db2[0].mark_count(), 1);
        let _ = a2;
    }

    #[test]
    fn timed_db_roundtrip() {
        let (alphabet, db) = parse_timed_db("login@0 search@15 buy@99\nidle@3\n").unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db[0].len(), 3);
        assert_eq!(db[0].time_at(1), 15);
        let text = timed_db_to_text(&alphabet, &db);
        let (a2, db2) = parse_timed_db(&text).unwrap();
        assert_eq!(timed_db_to_text(&a2, &db2), text);
    }

    #[test]
    fn timed_db_rejects_bad_input() {
        assert!(parse_timed_db("login search@5\n").is_err()); // missing @tick
        assert!(parse_timed_db("a@x\n").is_err()); // non-numeric tick
        assert!(parse_timed_db("a@9 b@3\n").is_err()); // decreasing time
        let empty = parse_timed_db("a@1 @5\n").unwrap_err(); // empty symbol name
        assert_eq!(empty.kind(), io::ErrorKind::InvalidData);
        assert!(empty.to_string().contains("line 1"), "{empty}");
        assert!(empty.to_string().contains("empty symbol name"), "{empty}");
    }

    #[test]
    fn timed_marks_roundtrip() {
        let (alphabet, mut db) = parse_timed_db("a@1 b@2\n").unwrap();
        db[0].mark(0);
        let text = timed_db_to_text(&alphabet, &db);
        assert!(text.starts_with("Δ@1"));
        let (_, db2) = parse_timed_db(&text).unwrap();
        assert_eq!(db2[0].mark_count(), 1);
        assert_eq!(db2[0].time_at(0), 1);
    }
}
