//! Synthetic sequence generators for benches, stress and property tests.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use seqhide_types::{Alphabet, SequenceDb, Symbol};

fn lengths<R: Rng + ?Sized>(rng: &mut R, n: usize, len_range: (usize, usize)) -> Vec<usize> {
    assert!(len_range.0 <= len_range.1, "invalid length range");
    (0..n)
        .map(|_| rng.random_range(len_range.0..=len_range.1))
        .collect()
}

/// A database of `n` sequences with uniformly random symbols from an
/// anonymous alphabet of `alphabet_size` symbols and lengths uniform in
/// `len_range` (inclusive).
///
/// ```
/// use seqhide_data::random_db;
/// let db = random_db(7, 25, (2, 6), 10);
/// assert_eq!(db.len(), 25);
/// assert!(db.sequences().iter().all(|t| (2..=6).contains(&t.len())));
/// assert_eq!(db.to_text(), random_db(7, 25, (2, 6), 10).to_text()); // seeded
/// ```
pub fn random_db(
    seed: u64,
    n: usize,
    len_range: (usize, usize),
    alphabet_size: usize,
) -> SequenceDb {
    assert!(alphabet_size > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let alphabet = Alphabet::anonymous(alphabet_size);
    let sequences = lengths(&mut rng, n, len_range)
        .into_iter()
        .map(|len| {
            (0..len)
                .map(|_| Symbol::new(rng.random_range(0..alphabet_size as u32)))
                .collect()
        })
        .collect();
    SequenceDb::from_parts(alphabet, sequences)
}

/// Like [`random_db`] but with Zipf-distributed symbol popularity
/// (exponent `s`), matching the skew of real event logs: symbol `k` is
/// drawn with probability ∝ `1/(k+1)^s`.
pub fn zipf_db(
    seed: u64,
    n: usize,
    len_range: (usize, usize),
    alphabet_size: usize,
    s: f64,
) -> SequenceDb {
    assert!(alphabet_size > 0);
    assert!(s >= 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let alphabet = Alphabet::anonymous(alphabet_size);
    // cumulative weights
    let mut cum: Vec<f64> = Vec::with_capacity(alphabet_size);
    let mut total = 0.0;
    for k in 0..alphabet_size {
        total += 1.0 / ((k + 1) as f64).powf(s);
        cum.push(total);
    }
    let draw = |rng: &mut ChaCha8Rng| -> Symbol {
        let x = rng.random::<f64>() * total;
        let idx = cum.partition_point(|&c| c < x).min(alphabet_size - 1);
        Symbol::new(idx as u32)
    };
    let sequences = lengths(&mut rng, n, len_range)
        .into_iter()
        .map(|len| (0..len).map(|_| draw(&mut rng)).collect())
        .collect();
    SequenceDb::from_parts(alphabet, sequences)
}

/// A first-order Markov generator: from symbol `k` the chain stays in a
/// small neighbourhood with high probability (`locality ∈ [0, 1]`),
/// mimicking the spatial locality of discretized trajectories — adjacent
/// events tend to be nearby grid cells.
pub fn markov_db(
    seed: u64,
    n: usize,
    len_range: (usize, usize),
    alphabet_size: usize,
    locality: f64,
) -> SequenceDb {
    assert!(alphabet_size > 0);
    assert!((0.0..=1.0).contains(&locality));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let alphabet = Alphabet::anonymous(alphabet_size);
    let a = alphabet_size as u32;
    let sequences = lengths(&mut rng, n, len_range)
        .into_iter()
        .map(|len| {
            let mut cur = rng.random_range(0..a);
            (0..len)
                .map(|_| {
                    let sym = Symbol::new(cur);
                    cur = if rng.random::<f64>() < locality {
                        // neighbour step (±1, wrapping)
                        if rng.random::<bool>() {
                            (cur + 1) % a
                        } else {
                            (cur + a - 1) % a
                        }
                    } else {
                        rng.random_range(0..a)
                    };
                    sym
                })
                .collect()
        })
        .collect();
    SequenceDb::from_parts(alphabet, sequences)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_db_shape() {
        let db = random_db(1, 50, (3, 9), 12);
        assert_eq!(db.len(), 50);
        assert_eq!(db.alphabet().len(), 12);
        for t in db.sequences() {
            assert!((3..=9).contains(&t.len()));
            assert!(t.iter().all(|s| s.id() < 12));
        }
    }

    #[test]
    fn random_db_deterministic() {
        assert_eq!(
            random_db(5, 10, (2, 4), 6).to_text(),
            random_db(5, 10, (2, 4), 6).to_text()
        );
        assert_ne!(
            random_db(5, 10, (2, 4), 6).to_text(),
            random_db(6, 10, (2, 4), 6).to_text()
        );
    }

    #[test]
    fn zipf_skews_toward_low_ids() {
        let db = zipf_db(2, 200, (10, 10), 20, 1.5);
        let mut counts = vec![0usize; 20];
        for t in db.sequences() {
            for &s in t {
                counts[s.id() as usize] += 1;
            }
        }
        // symbol 0 must dominate the tail decisively
        assert!(counts[0] > counts[10] * 3, "{counts:?}");
        assert!(counts[0] > counts[19] * 3, "{counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let db = zipf_db(3, 300, (10, 10), 10, 0.0);
        let mut counts = vec![0usize; 10];
        for t in db.sequences() {
            for &s in t {
                counts[s.id() as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "{counts:?}");
    }

    #[test]
    fn markov_locality_produces_adjacent_steps() {
        let db = markov_db(4, 100, (20, 20), 50, 0.95);
        let mut adjacent = 0usize;
        let mut total = 0usize;
        for t in db.sequences() {
            for w in t.symbols().windows(2) {
                let a = w[0].id() as i64;
                let b = w[1].id() as i64;
                let d = (a - b).rem_euclid(50).min((b - a).rem_euclid(50));
                if d <= 1 {
                    adjacent += 1;
                }
                total += 1;
            }
        }
        assert!(adjacent as f64 / total as f64 > 0.8);
    }

    #[test]
    fn zero_length_sequences_allowed() {
        let db = random_db(9, 5, (0, 0), 3);
        assert!(db.sequences().iter().all(|t| t.is_empty()));
    }

    #[test]
    #[should_panic(expected = "invalid length range")]
    fn inverted_range_rejected() {
        let _ = random_db(0, 1, (5, 2), 3);
    }
}
