//! Property tests for the data substrate: grid discretization geometry,
//! generator invariants, IO round-trips.

use proptest::prelude::*;
use seqhide_data::{io, markov_db, random_db, zipf_db, Grid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every point maps into a valid cell, and the cell's own centre maps
    /// back to it (the discretization is a partition).
    #[test]
    fn grid_partitions_the_square(
        nx in 1usize..12,
        ny in 1usize..12,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
    ) {
        let g = Grid::new(nx, ny);
        let (i, j) = g.cell_of((x, y));
        prop_assert!((1..=nx).contains(&i) && (1..=ny).contains(&j));
        prop_assert_eq!(g.cell_of(g.cell_center(i, j)), (i, j));
    }

    /// Discretization collapses consecutive stays: no two adjacent symbols
    /// are equal, and every symbol names the cell of some sample.
    #[test]
    fn discretize_collapses_and_covers(
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..=30),
    ) {
        let g = Grid::paper();
        let alphabet = g.alphabet();
        let seq = g.discretize(&points, &alphabet);
        prop_assert!(seq.len() <= points.len());
        for w in seq.symbols().windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
        let visited: Vec<String> = points
            .iter()
            .map(|&p| {
                let (i, j) = g.cell_of(p);
                Grid::cell_name(i, j)
            })
            .collect();
        for &s in seq.symbols() {
            prop_assert!(visited.contains(&alphabet.render(s)));
        }
    }

    /// Generators are seed-deterministic and shape-correct.
    #[test]
    fn generators_respect_shape(
        seed in 0u64..50,
        n in 1usize..40,
        lo in 0usize..6,
        extra in 0usize..6,
        alpha in 1usize..20,
    ) {
        let range = (lo, lo + extra);
        for db in [
            random_db(seed, n, range, alpha),
            zipf_db(seed, n, range, alpha, 1.1),
            markov_db(seed, n, range, alpha, 0.8),
        ] {
            prop_assert_eq!(db.len(), n);
            prop_assert_eq!(db.alphabet().len(), alpha);
            for t in db.sequences() {
                prop_assert!((range.0..=range.1).contains(&t.len()));
                prop_assert!(t.iter().all(|s| (s.id() as usize) < alpha));
            }
        }
        prop_assert_eq!(
            markov_db(seed, n, range, alpha, 0.8).to_text(),
            markov_db(seed, n, range, alpha, 0.8).to_text()
        );
    }

    /// Plain-text IO round-trips arbitrary generated databases.
    #[test]
    fn io_roundtrip(seed in 0u64..50, n in 1usize..20) {
        let db = markov_db(seed, n, (1, 8), 9, 0.6);
        let dir = std::env::temp_dir().join("seqhide-prop-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("db-{seed}-{n}.seq"));
        io::write_db(&path, &db).unwrap();
        let back = io::read_db(&path).unwrap();
        prop_assert_eq!(back.to_text(), db.to_text());
        std::fs::remove_file(path).unwrap();
    }

    /// Timed-format IO round-trips arbitrary event sequences.
    #[test]
    fn timed_io_roundtrip(
        rows in prop::collection::vec(
            prop::collection::vec((0u32..6, 0u64..50), 0..=8), 0..=6),
    ) {
        use seqhide_types::TimedSequence;
        let mut db: Vec<TimedSequence> = Vec::new();
        let mut alphabet = seqhide_types::Alphabet::anonymous(6);
        for mut evs in rows {
            if evs.is_empty() {
                continue; // empty sequences are not representable in text
            }
            evs.sort_by_key(|&(_, t)| t);
            db.push(TimedSequence::from_pairs(evs));
        }
        let text = io::timed_db_to_text(&alphabet, &db);
        let (a2, db2) = io::parse_timed_db(&text).unwrap();
        prop_assert_eq!(io::timed_db_to_text(&a2, &db2), text);
        let _ = &mut alphabet;
    }
}
