//! The `Count` abstraction the matching DPs are generic over.

/// An unsigned counter type suitable for the embedding-counting dynamic
/// programs.
///
/// The DPs only ever *add* counts, *subtract* a smaller count from a larger
/// one (Theorem 2: `δ(T[i]) = |M^T| − |M^{T∖i}|`), compare them, and test for
/// zero — so that is the whole interface. Implementations:
/// [`BigCount`](crate::BigCount) (exact), [`Sat64`](crate::Sat64) and
/// [`Sat128`](crate::Sat128) (saturating).
pub trait Count: Clone + Ord + std::fmt::Debug + std::fmt::Display {
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity (DP base case `P₀ʲ = 1`).
    fn one() -> Self;

    /// Whether this count is zero.
    fn is_zero(&self) -> bool;

    /// In-place addition: `self += other`. Saturating implementations clamp
    /// at their maximum.
    fn add_assign(&mut self, other: &Self);

    /// Saturating subtraction: `max(self − other, 0)`.
    ///
    /// In exact arithmetic the DP identities guarantee `other ≤ self`
    /// wherever this is called; the saturating contract makes fixed-width
    /// implementations total.
    fn saturating_sub(&self, other: &Self) -> Self;

    /// Multiplication: `self · other`. Needed only by the forward–backward
    /// `δ` optimisation, which combines prefix-embedding and
    /// suffix-embedding counts multiplicatively. Saturating implementations
    /// clamp at their maximum.
    fn mul(&self, other: &Self) -> Self;

    /// Conversion from a machine integer.
    fn from_u64(v: u64) -> Self;

    /// Lossy conversion for reporting/plotting (may round; `+∞`-free).
    fn to_f64(&self) -> f64;

    /// Whether this value has hit a representation ceiling and is therefore
    /// a lower bound rather than an exact count. Always `false` for exact
    /// implementations.
    fn is_saturated(&self) -> bool {
        false
    }

    /// Convenience: `self + other` by value.
    fn add(&self, other: &Self) -> Self {
        let mut r = self.clone();
        r.add_assign(other);
        r
    }
}

/// Plain `u64` as a `Count` — **panics on overflow** (debug) / wraps
/// (release). Only suitable for tests and inputs known to be tiny; prefer
/// [`Sat64`](crate::Sat64) everywhere else. Provided because it makes
/// property-test oracles trivial to write.
impl Count for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn add_assign(&mut self, other: &Self) {
        *self += *other;
    }
    fn saturating_sub(&self, other: &Self) -> Self {
        u64::saturating_sub(*self, *other)
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn from_u64(v: u64) -> Self {
        v
    }
    fn to_f64(&self) -> f64 {
        *self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_count_basics() {
        let a = <u64 as Count>::from_u64(5);
        let b = <u64 as Count>::from_u64(3);
        assert_eq!(Count::add(&a, &b), 8);
        assert_eq!(Count::mul(&a, &b), 15);
        assert_eq!(Count::saturating_sub(&b, &a), 0);
        assert_eq!(Count::saturating_sub(&a, &b), 2);
        assert!(<u64 as Count>::zero().is_zero());
        assert!(!<u64 as Count>::one().is_zero());
        assert!(!a.is_saturated());
        assert_eq!(a.to_f64(), 5.0);
    }
}
