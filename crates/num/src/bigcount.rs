//! Exact arbitrary-precision match counts.

use std::cmp::Ordering;
use std::fmt;

use crate::Count;

/// An exact, arbitrary-precision unsigned integer specialised for match
/// counting.
///
/// Little-endian `u64` limbs, always normalised (no trailing zero limbs; the
/// value 0 is the empty limb vector). Only the operations the matching DPs
/// require are implemented — addition, saturating subtraction, schoolbook multiplication, comparison —
/// plus decimal rendering for reports. This is deliberately *not* a general
/// bignum: no division beyond the small-divisor helper used by `Display`.
///
/// ```
/// use seqhide_num::{BigCount, Count};
/// let mut c = BigCount::from_u64(u64::MAX);
/// c.add_assign(&BigCount::one());
/// assert_eq!(c.to_string(), "18446744073709551616"); // 2^64, exact
/// assert!(!c.is_saturated());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigCount {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigCount {
    /// Normalises by trimming trailing zero limbs.
    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of limbs (0 for the value zero). Exposed for tests.
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Parses a decimal string (the inverse of `Display`).
    ///
    /// ```
    /// use seqhide_num::{BigCount, Count};
    /// let v = BigCount::from_decimal_str("340282366920938463463374607431768211456").unwrap();
    /// assert_eq!(v.to_string(), "340282366920938463463374607431768211456"); // 2^128
    /// assert!(BigCount::from_decimal_str("12x4").is_none());
    /// ```
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let ten = BigCount::from_u64(10);
        let mut acc = BigCount::zero();
        for c in s.chars() {
            let digit = c.to_digit(10)?;
            acc = acc.mul(&ten);
            acc.add_assign(&BigCount::from_u64(u64::from(digit)));
        }
        Some(acc)
    }

    /// Divides in place by a small divisor, returning the remainder.
    /// Used only for decimal rendering.
    fn div_rem_small(&mut self, divisor: u64) -> u64 {
        debug_assert!(divisor > 0);
        let mut rem: u128 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | u128::from(*limb);
            *limb = (cur / u128::from(divisor)) as u64;
            rem = cur % u128::from(divisor);
        }
        self.normalize();
        rem as u64
    }
}

impl Count for BigCount {
    fn zero() -> Self {
        BigCount { limbs: Vec::new() }
    }

    fn one() -> Self {
        BigCount { limbs: vec![1] }
    }

    fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn add_assign(&mut self, other: &Self) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
            if carry == 0 && i >= other.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    fn saturating_sub(&self, other: &Self) -> Self {
        if *self <= *other {
            return Self::zero();
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        debug_assert_eq!(borrow, 0, "saturating_sub checked self > other");
        let mut r = BigCount { limbs };
        r.normalize();
        r
    }

    fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        // Schoolbook multiplication; operand sizes in the DP are tiny
        // (counts of at most a few hundred bits).
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(limbs[i + j]) + u128::from(a) * u128::from(b) + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u128::from(limbs[k]) + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigCount { limbs };
        r.normalize();
        r
    }

    fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigCount { limbs: vec![v] }
        }
    }

    fn to_f64(&self) -> f64 {
        // Most-significant-first Horner evaluation; saturates to f64::MAX
        // via IEEE semantics only for astronomically large values.
        self.limbs
            .iter()
            .rev()
            .fold(0.0_f64, |acc, &limb| acc * 2.0_f64.powi(64) + limb as f64)
    }
}

impl PartialOrd for BigCount {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigCount {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 19-digit chunks (10^19 < 2^64) off a working copy.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut work = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !work.is_zero() {
            chunks.push(work.div_rem_small(CHUNK));
        }
        let mut out = chunks.last().copied().unwrap_or(0).to_string();
        for chunk in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{chunk:019}"));
        }
        write!(f, "{out}")
    }
}

impl fmt::Debug for BigCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> BigCount {
        let mut b = BigCount::from_u64((v & u128::from(u64::MAX)) as u64);
        let hi = (v >> 64) as u64;
        if hi != 0 {
            b.limbs.resize(2, 0);
            b.limbs[1] = hi;
        }
        b
    }

    #[test]
    fn zero_and_one() {
        assert!(BigCount::zero().is_zero());
        assert!(!BigCount::one().is_zero());
        assert_eq!(BigCount::zero().to_string(), "0");
        assert_eq!(BigCount::one().to_string(), "1");
        assert_eq!(BigCount::zero().limb_len(), 0);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let mut a = BigCount::from_u64(u64::MAX);
        a.add_assign(&BigCount::one());
        assert_eq!(a.limb_len(), 2);
        assert_eq!(a.to_string(), "18446744073709551616");
    }

    #[test]
    fn sub_with_borrow() {
        let a = big(1u128 << 64); // 2^64
        let r = a.saturating_sub(&BigCount::one());
        assert_eq!(r.to_string(), u64::MAX.to_string());
        assert_eq!(r.limb_len(), 1);
    }

    #[test]
    fn sub_saturates() {
        let a = BigCount::from_u64(3);
        let b = BigCount::from_u64(7);
        assert!(a.saturating_sub(&b).is_zero());
        assert!(a.saturating_sub(&a).is_zero());
    }

    #[test]
    fn ordering_across_limb_counts() {
        let small = BigCount::from_u64(u64::MAX);
        let large = big(1u128 << 64);
        assert!(small < large);
        assert!(large > small);
        assert_eq!(large.cmp(&large.clone()), Ordering::Equal);
    }

    #[test]
    fn display_large_value() {
        // 2^128 = 340282366920938463463374607431768211456
        let mut v = big(u128::MAX);
        v.add_assign(&BigCount::one());
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn to_f64_is_close() {
        let v = big(1u128 << 100);
        let expect = 2.0_f64.powi(100);
        assert!((v.to_f64() - expect).abs() / expect < 1e-12);
        assert_eq!(BigCount::zero().to_f64(), 0.0);
    }

    #[test]
    fn never_saturated() {
        assert!(!big(u128::MAX).is_saturated());
    }

    // C(2k, k) computed with BigCount additions via Pascal's row — an
    // end-to-end check that exercises long carry/borrow chains, mirroring
    // how the DP builds huge counts (Lemma 1's worst case).
    #[test]
    fn pascal_row_matches_known_binomial() {
        let n = 68usize; // C(68,34) = 28453041475240576740 > u64::MAX
        let mut row: Vec<BigCount> = vec![BigCount::one()];
        for _ in 0..n {
            let mut next = vec![BigCount::one()];
            for w in row.windows(2) {
                next.push(Count::add(&w[0], &w[1]));
            }
            next.push(BigCount::one());
            row = next;
        }
        assert_eq!(row[n / 2].to_string(), "28453041475240576740");
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
            let mut x = big(a);
            x.add_assign(&big(b));
            prop_assert_eq!(x, big(a + b));
        }

        #[test]
        fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            let r = big(a).saturating_sub(&big(b));
            prop_assert_eq!(r, big(a.saturating_sub(b)));
        }

        #[test]
        fn cmp_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }

        #[test]
        fn display_matches_u128(a in 0u128..u128::MAX) {
            prop_assert_eq!(big(a).to_string(), a.to_string());
        }

        #[test]
        fn display_parse_roundtrips(a in 0u128..u128::MAX) {
            let v = big(a);
            prop_assert_eq!(BigCount::from_decimal_str(&v.to_string()), Some(v));
        }

        #[test]
        fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let r = Count::mul(&big(u128::from(a)), &big(u128::from(b)));
            prop_assert_eq!(r, big(u128::from(a) * u128::from(b)));
        }

        #[test]
        fn mul_distributes_over_add(
            a in 0u128..(1 << 100),
            b in 0u128..(1 << 100),
            c in 0u64..u64::MAX,
        ) {
            let lhs = Count::mul(&Count::add(&big(a), &big(b)), &big(u128::from(c)));
            let rhs = Count::add(
                &Count::mul(&big(a), &big(u128::from(c))),
                &Count::mul(&big(b), &big(u128::from(c))),
            );
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn add_commutes(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
            prop_assert_eq!(Count::add(&big(a), &big(b)), Count::add(&big(b), &big(a)));
        }

        #[test]
        fn add_then_sub_roundtrips(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
            let sum = Count::add(&big(a), &big(b));
            prop_assert_eq!(sum.saturating_sub(&big(b)), big(a));
        }
    }
}
