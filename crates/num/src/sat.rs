//! Fixed-width saturating counters.

use std::fmt;

use crate::Count;

macro_rules! saturating_counter {
    ($name:ident, $inner:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Saturates at the type maximum instead of overflowing; once
        /// saturated, a value is a *lower bound* on the true count and
        /// [`Count::is_saturated`] reports it. Subtraction involving a
        /// saturated operand is still saturating-total but no longer exact —
        /// the sanitization heuristic only uses counts for `argmax`/zero
        /// tests, so the worst case is a perturbed tie-break, which the
        /// `ablation_delta_methods` bench quantifies against
        /// [`BigCount`](crate::BigCount).
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($inner);

        impl $name {
            /// The saturation ceiling.
            pub const MAX: $name = $name(<$inner>::MAX);

            /// Creates a counter from a raw value.
            pub const fn new(v: $inner) -> Self {
                $name(v)
            }

            /// The raw value (ceiling if saturated).
            pub const fn get(self) -> $inner {
                self.0
            }
        }

        impl Count for $name {
            fn zero() -> Self {
                $name(0)
            }
            fn one() -> Self {
                $name(1)
            }
            fn is_zero(&self) -> bool {
                self.0 == 0
            }
            fn add_assign(&mut self, other: &Self) {
                self.0 = self.0.saturating_add(other.0);
            }
            fn saturating_sub(&self, other: &Self) -> Self {
                $name(self.0.saturating_sub(other.0))
            }
            fn mul(&self, other: &Self) -> Self {
                $name(self.0.saturating_mul(other.0))
            }
            fn from_u64(v: u64) -> Self {
                $name(v as $inner)
            }
            fn to_f64(&self) -> f64 {
                self.0 as f64
            }
            fn is_saturated(&self) -> bool {
                self.0 == <$inner>::MAX
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.is_saturated() {
                    write!(f, "≥{}", self.0)
                } else {
                    write!(f, "{}", self.0)
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

saturating_counter!(Sat64, u64, "A 64-bit saturating match counter.");
saturating_counter!(Sat128, u128, "A 128-bit saturating match counter.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates() {
        let mut a = Sat64::new(u64::MAX - 1);
        a.add_assign(&Sat64::new(5));
        assert_eq!(a, Sat64::MAX);
        assert!(a.is_saturated());
        assert_eq!(format!("{a}"), format!("≥{}", u64::MAX));
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = Sat64::new(3);
        let b = Sat64::new(10);
        assert_eq!(a.saturating_sub(&b), Sat64::new(0));
        assert!(a.saturating_sub(&b).is_zero());
        assert_eq!(b.saturating_sub(&a), Sat64::new(7));
    }

    #[test]
    fn ordering_matches_values() {
        assert!(Sat64::new(2) < Sat64::new(3));
        assert!(Sat128::new(1) > Sat128::new(0));
    }

    #[test]
    fn identities() {
        assert!(Sat64::zero().is_zero());
        assert_eq!(Sat64::one().get(), 1);
        assert_eq!(Sat128::from_u64(42).get(), 42);
        assert_eq!(Sat128::from_u64(42).to_f64(), 42.0);
        assert!(!Sat64::new(7).is_saturated());
    }

    #[test]
    fn mul_saturates() {
        let big = Sat64::new(u64::MAX / 2);
        assert!(Count::mul(&big, &Sat64::new(3)).is_saturated());
        assert_eq!(Count::mul(&Sat64::new(6), &Sat64::new(7)), Sat64::new(42));
    }

    #[test]
    fn sat128_add() {
        let mut a = Sat128::new(u128::MAX);
        a.add_assign(&Sat128::one());
        assert!(a.is_saturated());
    }
}
