//! # seqhide-num
//!
//! Counting substrate for the matching dynamic programs of *Hiding
//! Sequences* (ICDE 2007).
//!
//! Lemma 1 of the paper shows the matching set `M_S^T` is worst-case
//! exponential in `|T|` (`C(n, n/2) ~ 2ⁿ/√n` for a unary alphabet), so match
//! *counts* — which the DPs of Lemmas 2–5 manipulate — overflow any fixed
//! machine integer on adversarial inputs: `C(200, 100) ≈ 9·10⁵⁸ > u128::MAX`.
//! No big-integer crate is on this project's dependency allow-list, so this
//! crate provides a minimal exact big unsigned integer, [`BigCount`],
//! alongside cheap saturating counters, all behind one [`Count`] trait that
//! the DPs are generic over:
//!
//! * [`BigCount`] — exact, arbitrary precision (limb vector; add/sub/cmp
//!   only, which is all the DPs need);
//! * [`Sat64`] / [`Sat128`] — fixed-width saturating counters for speed.
//!   Saturation can only perturb *tie-breaking* in the sanitization
//!   heuristic; [`Count::is_saturated`] lets callers detect and report it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigcount;
mod count;
mod sat;

pub use bigcount::BigCount;
pub use count::Count;
pub use sat::{Sat128, Sat64};
