//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! Unlike the other shims this one implements the genuine ChaCha8 block
//! function (RFC 8439 quarter-rounds, 8 rounds, 64-bit block counter), so
//! the generator quality matches upstream; only the word-to-stream order is
//! unspecified-compatible. Consumers in this workspace require determinism
//! per seed and independence across seeds, both of which hold.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher core used as an RNG, with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unconsumed word in `buf`; 16 means "refill".
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut w = state;
        for _ in 0..4 {
            // two rounds per iteration: column round + diagonal round
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.buf = w;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            *k = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..20).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn block_boundary_is_seamless() {
        // 16 words = 8 u64 per block; cross several boundaries
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let many: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        let uniq: std::collections::HashSet<_> = many.iter().collect();
        assert_eq!(uniq.len(), many.len());
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let n: usize = rng.random_range(0..10);
        assert!(n < 10);
    }
}
