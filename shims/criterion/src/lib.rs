//! Offline stand-in for `criterion` with the subset of its API this
//! workspace's benches use: `Criterion` with `sample_size` /
//! `measurement_time` / `warm_up_time`, `bench_function`,
//! `benchmark_group` (+ `throughput`, `bench_with_input`, `finish`),
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a straightforward wall-clock mean over `sample_size`
//! samples — no outlier analysis, no plotting, no saved baselines. Results
//! print one line per benchmark: `name ... mean 12.3 ns/iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    /// `--test` mode: run each benchmark exactly once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().0;
        self.run_one(&name, f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `group/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(1);
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = per_iter.max(b.elapsed / b.iters.max(1) as u32);
            if Instant::now() >= warm_until {
                break;
            }
        }
        // Size each sample so all samples fit the measurement budget.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            count += b.iters;
        }
        let mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
        println!("{name:<50} mean {} ({count} iters)", format_ns(mean_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload (reported, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&name, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterised.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration workload descriptor.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping results opaque to the
    /// optimiser.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Defines a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.test_mode = false;
        c.filter = None;
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.test_mode = false;
        c.filter = Some("nomatch-xyz".into());
        let mut ran = false;
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("case", 1), &5u32, |b, &_n| {
                b.iter(|| ran = true)
            });
            g.finish();
        }
        assert!(!ran, "filter should have skipped the benchmark");
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2_000_000_000.0).contains("s/iter"));
    }
}
