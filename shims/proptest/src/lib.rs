//! Offline stand-in for `proptest` implementing the subset of its API this
//! workspace uses: the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! `Strategy` with `prop_map` / `prop_recursive`, `prop_oneof!`, `Just`,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! integer/float range strategies, and two-pattern string strategies.
//!
//! Differences from upstream, by design:
//! - Generation is **deterministic**: seeds derive from the test name and
//!   case index, so every run explores the same inputs (better for CI).
//! - **No shrinking** — a failing case reports the assertion, not a minimal
//!   counterexample.
//! - String strategies support only the simple `class{m,n}` shapes the
//!   workspace actually uses (e.g. `"[a-z]{1,6}"`, `".{0,40}"`).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, RNG, and error plumbing used by the `proptest!` macro.

    /// Knobs honoured by the shim: only `cases`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is regenerated.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failing variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64-based deterministic generator for strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Derives a case RNG from the test identity and attempt number.
        pub fn for_case(name: &str, attempt: u64) -> Self {
            // FNV-1a over the name, mixed with the attempt counter
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 uniform bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform on `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate`
    /// produces the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive structures: `self` is the leaf; `expand` wraps
        /// a strategy for depth-`d` values into one for depth-`d+1`.
        ///
        /// `_desired_size` and `_expected_branch` are accepted for API
        /// compatibility but unused — depth alone bounds recursion here.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), expand(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives — backs `prop_oneof!`.
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over `alts`; panics if empty.
        pub fn new(alts: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !alts.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(alts)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty as $u:ty => $draw:ident),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // cast through the same-width unsigned type so signed
                    // spans don't sign-extend
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    self.start.wrapping_add((rng.$draw() as u128 % span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as $u as u128;
                    if span == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    lo.wrapping_add((rng.$draw() as u128 % (span + 1)) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(
        u8 as u8 => next_u64, u16 as u16 => next_u64, u32 as u32 => next_u64,
        u64 as u64 => next_u64, usize as usize => next_u64, u128 as u128 => next_u128,
        i8 as u8 => next_u64, i16 as u16 => next_u64, i32 as u32 => next_u64,
        i64 as u64 => next_u64, isize as usize => next_u64
    );

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String strategy for the `class{m,n}` pattern shapes the workspace
    /// uses. `class` is a literal char, `.`, or a `[a-z0-9…]` set with
    /// ranges; each class takes an optional `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    /// Character pool for `.`: printable ASCII plus a few of the unicode
    /// glyphs this codebase treats specially, to stress parsers.
    const DOT_POOL: &[char] = &[
        ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1',
        '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C',
        'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'x', 'y', 'z', '{', '|', '}',
        '~', 'Δ', '⟨', '⟩',
    ];

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // one atom: a character class
            let class: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    DOT_POOL.to_vec()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // skip ']'
                    set
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // optional {m,n} repetition
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (l, h) = match body.split_once(',') {
                    Some((l, h)) => (
                        l.parse().expect("bad repetition"),
                        h.parse().expect("bad repetition"),
                    ),
                    None => {
                        let n: usize = body.parse().expect("bad repetition");
                        (n, n)
                    }
                };
                i = close + 1;
                (l, h)
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything that can pick a collection length.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for ::std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for ::std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` of the inner value about ¾ of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The [`of`] strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A uniformly random element of `values` (cloned).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over an empty list");
        Select(values)
    }

    /// The [`select`] strategy.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module tree (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Fails the current case with a message (formatted like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
///
/// Unlike upstream, the offending values are not printed (no `Debug`
/// bound); the expression text and source location identify the site.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (at {}:{})",
            stringify!($left), stringify!($right), file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (at {}:{}): {}",
                stringify!($left), stringify!($right), file!(), line!(), format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case unless the two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (at {}:{})",
            stringify!($left), stringify!($right), file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (at {}:{}): {}",
                stringify!($left), stringify!($right), file!(), line!(), format!($($fmt)*)
            )));
        }
    }};
}

/// Rejects the current case (regenerated with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        // weights are accepted but treated as uniform in this shim
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted cases (default 256, or the
/// `#![proptest_config(...)]` override), regenerating on `prop_assume!`
/// rejections and panicking on the first `prop_assert*` failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        @impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __cases = __config.cases as u64;
                let mut __accepted: u64 = 0;
                let mut __attempt: u64 = 0;
                while __accepted < __cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= __cases.saturating_mul(20).max(1000),
                        "proptest: too many prop_assume! rejections in {}",
                        stringify!($name),
                    );
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(file!(), "::", stringify!($name)),
                        __attempt,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!(
                            "proptest case {} of {} failed: {}",
                            __attempt, stringify!($name), __msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 0u32..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..7, y in 0u64..=4, s in "[a-c]{2,5}") {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..5, 0..=6),
            o in prop::option::of(1usize..3),
            p in prop::sample::select(vec!["a", "b"]),
            (l, r) in pair(),
        ) {
            prop_assert!(v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(i) = o {
                prop_assert!((1..3).contains(&i));
            }
            prop_assert!(p == "a" || p == "b");
            prop_assert!(l < 10 && r < 10);
        }

        #[test]
        fn assume_regenerates(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), 5u32..8, (0u32..2).prop_map(|x| x + 10)]) {
            prop_assert!(v == 1 || (5..8).contains(&v) || v == 10 || v == 11);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u32..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                prop::collection::vec(inner, 1..=3).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::for_case("recursive", 1);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = prop::collection::vec(0u32..100, 0..=10);
        let mut a = crate::test_runner::TestRng::for_case("det", 7);
        let mut b = crate::test_runner::TestRng::for_case("det", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
