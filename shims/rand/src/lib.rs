//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). It implements exactly the surface the workspace uses —
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng`],
//! [`rngs::SmallRng`], [`seq::IndexedRandom::choose`] and
//! [`seq::SliceRandom::shuffle`] — with a xoshiro256++ generator behind
//! `SmallRng`. Streams differ from upstream `rand`, but every consumer in
//! this workspace only relies on determinism-per-seed, not on particular
//! streams.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Random`] type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution.
pub trait Random {
    /// Draws a uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Standard uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws a sample; panics on an empty range, like upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is < 2⁻⁶⁴·bound, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same device as
    /// upstream `rand`, so related `u64` seeds decorrelate).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            b.copy_from_slice(&v[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the fallback generator.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator — xoshiro256++ here.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{below, RngCore};

    /// Random access into slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }

    /// In-place random permutation.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        // degenerate inclusive range
        let v: usize = rng.random_range(5..=5);
        assert_eq!(v, 5);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(2);
        let empty: &[u32] = &[];
        assert_eq!(empty.choose(&mut rng), None);
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
