//! Property tests pinning [`DeltaState::apply_delta`] byte-identical to
//! full re-sanitization of the mutated database on the same seed — the
//! incremental path may only ever be a *faster* route to the exact same
//! release. Covered: HH/HR/RH/RR (plus the §8 AutoCorrelation/Length
//! globals) × plain/itemset/timed/string × engine modes × thread counts,
//! with empty deltas, deltas that empty the database, and ψ values that
//! straddle the supporter count (boundary flips) arising from the
//! generators.

use proptest::prelude::*;
use seqhide::core::delta::{DeltaReport, DeltaState, SeqDelta};
use seqhide::core::timed::{TimeConstraints, TimedPattern};
use seqhide::core::{
    EngineMode, GlobalStrategy, LocalStrategy, SanitizeReport, Sanitizer, TimedDomain,
};
use seqhide::matching::itemset::ItemsetPattern;
use seqhide::matching::{
    ConstraintSet, ItemsetMatchEngine, MatchEngine, ScratchDomain, SensitiveSet,
};
use seqhide::num::{BigCount, Sat64};
use seqhide::string::{StringDomain, StringPattern};
use seqhide::types::{Alphabet, Sequence};

/// The algorithmic report fields — engine work counters
/// (`engine_repairs`/`fallback_recounts`) legitimately differ between the
/// incremental and full paths, exactly as between engine modes.
fn same_outcome(a: &SanitizeReport, b: &SanitizeReport) -> bool {
    a.marks_introduced == b.marks_introduced
        && a.sequences_sanitized == b.sequences_sanitized
        && a.supporters_before == b.supporters_before
        && a.residual_supports == b.residual_supports
        && a.hidden == b.hidden
}

/// Applies the delta plan to pristine content: the database a full
/// re-sanitization would start from.
fn mutate<S: Clone>(originals: &[S], added: &[S], removed: &[usize]) -> Vec<S> {
    let mut removed: Vec<usize> = removed.to_vec();
    removed.sort_unstable();
    removed.dedup();
    let mut out: Vec<S> = originals
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, t)| t.clone())
        .collect();
    out.extend(added.iter().cloned());
    out
}

/// Clamps raw removal indices into the current database (empty dbs get
/// no removals).
fn clamp_removals(raw: &[usize], len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    raw.iter().map(|&r| r % len).collect()
}

fn strategy_pair() -> impl Strategy<Value = (LocalStrategy, GlobalStrategy)> {
    (
        prop::sample::select(vec![LocalStrategy::Heuristic, LocalStrategy::Random]),
        prop::sample::select(vec![
            GlobalStrategy::Heuristic,
            GlobalStrategy::Random,
            GlobalStrategy::AutoCorrelation,
            GlobalStrategy::Length,
        ]),
    )
}

fn rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..5, 0..=8), 0..=10)
}

fn patterns() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..5, 1..=3), 1..=2)
}

/// Runs one plain-domain scenario end to end: build, apply one delta,
/// compare against a fresh full run on the mutated database (also
/// exercised threaded — the full path must agree with itself too).
#[allow(clippy::too_many_arguments)]
fn check_plain(
    rows: &[Vec<u32>],
    added_rows: &[Vec<u32>],
    removed_raw: &[usize],
    pats: &[Vec<u32>],
    psi: usize,
    seed: u64,
    local: LocalStrategy,
    global: GlobalStrategy,
    engine: EngineMode,
    exact: bool,
    threads: usize,
) -> Result<(DeltaReport, SanitizeReport), TestCaseError> {
    let originals: Vec<Sequence> = rows.iter().map(|r| Sequence::from_ids(r.clone())).collect();
    let added: Vec<Sequence> = added_rows
        .iter()
        .map(|r| Sequence::from_ids(r.clone()))
        .collect();
    let removed = clamp_removals(removed_raw, originals.len());
    let sh = SensitiveSet::new(pats.iter().map(|p| Sequence::from_ids(p.clone())).collect());
    let config = Sanitizer::new(local, global, psi)
        .with_seed(seed)
        .with_engine(engine)
        .with_exact_counts(exact);

    let delta = SeqDelta {
        added: added.clone(),
        removed: removed.clone(),
    };
    let (delta_report, released) = match (exact, engine) {
        (false, EngineMode::Incremental) => {
            let mut domain = MatchEngine::<Sat64>::new(&sh);
            let mut state = DeltaState::build(&config, &mut domain, originals.clone());
            let r = state.apply_delta(&mut domain, delta).unwrap();
            (r, state.released().to_vec())
        }
        (true, EngineMode::Incremental) => {
            let mut domain = MatchEngine::<BigCount>::new(&sh);
            let mut state = DeltaState::build(&config, &mut domain, originals.clone());
            let r = state.apply_delta(&mut domain, delta).unwrap();
            (r, state.released().to_vec())
        }
        (false, EngineMode::Scratch) => {
            let mut domain = ScratchDomain::<Sat64>::new(&sh);
            let mut state = DeltaState::build(&config, &mut domain, originals.clone());
            let r = state.apply_delta(&mut domain, delta).unwrap();
            (r, state.released().to_vec())
        }
        (true, EngineMode::Scratch) => {
            let mut domain = ScratchDomain::<BigCount>::new(&sh);
            let mut state = DeltaState::build(&config, &mut domain, originals.clone());
            let r = state.apply_delta(&mut domain, delta).unwrap();
            (r, state.released().to_vec())
        }
    };

    let mut mutated = mutate(&originals, &added, &removed);
    let full = match (exact, engine) {
        (false, EngineMode::Incremental) => config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| MatchEngine::<Sat64>::new(&sh)),
        (true, EngineMode::Incremental) => config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| MatchEngine::<BigCount>::new(&sh)),
        (false, EngineMode::Scratch) => config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| ScratchDomain::<Sat64>::new(&sh)),
        (true, EngineMode::Scratch) => config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| ScratchDomain::<BigCount>::new(&sh)),
    };
    prop_assert_eq!(&released, &mutated, "released content diverged");
    prop_assert!(
        same_outcome(&delta_report.report, &full),
        "reports diverged: delta {:?} vs full {:?}",
        delta_report.report,
        full
    );
    Ok((delta_report, full))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: one delta == full re-sanitization, across
    /// the whole strategy/engine/thread/arithmetic matrix.
    #[test]
    fn plain_delta_equals_full_resanitize(
        rows in rows(),
        added in prop::collection::vec(prop::collection::vec(0u32..5, 0..=8), 0..=4),
        removed in prop::collection::vec(0usize..64, 0..=4),
        pats in patterns(),
        psi in 0usize..6,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
        engine in prop::sample::select(vec![EngineMode::Incremental, EngineMode::Scratch]),
        exact in prop::sample::select(vec![false, true]),
        threads in 1usize..4,
    ) {
        check_plain(
            &rows, &added, &removed, &pats, psi, seed, local, global, engine, exact, threads,
        )?;
    }

    /// An empty delta re-marks and restores nothing — selection is
    /// identical, so every victim carries over.
    #[test]
    fn empty_delta_is_a_noop(
        rows in rows(),
        pats in patterns(),
        psi in 0usize..4,
        (local, global) in strategy_pair(),
    ) {
        let (report, _) = check_plain(
            &rows, &[], &[], &pats, psi, 7, local, global,
            EngineMode::Incremental, false, 1,
        )?;
        prop_assert_eq!(report.remarked, 0);
        prop_assert_eq!(report.restored, 0);
    }

    /// Removing every sequence empties the database and the report.
    #[test]
    fn delta_emptying_database(
        rows in prop::collection::vec(prop::collection::vec(0u32..5, 0..=8), 1..=8),
        pats in patterns(),
        psi in 0usize..4,
        (local, global) in strategy_pair(),
    ) {
        let removed: Vec<usize> = (0..rows.len()).collect();
        let (report, _) = check_plain(
            &rows, &[], &removed, &pats, psi, 3, local, global,
            EngineMode::Incremental, false, 1,
        )?;
        prop_assert_eq!(report.report.supporters_before, 0);
        prop_assert_eq!(report.report.sequences_sanitized, 0);
        prop_assert!(report.report.hidden);
    }

    /// A chain of deltas stays equivalent to full re-sanitization of the
    /// final database (state does not drift across applies).
    #[test]
    fn chained_deltas_stay_equivalent(
        rows in rows(),
        add1 in prop::collection::vec(prop::collection::vec(0u32..5, 0..=6), 0..=3),
        rm1 in prop::collection::vec(0usize..64, 0..=3),
        add2 in prop::collection::vec(prop::collection::vec(0u32..5, 0..=6), 0..=3),
        rm2 in prop::collection::vec(0usize..64, 0..=3),
        pats in patterns(),
        psi in 0usize..5,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
    ) {
        let originals: Vec<Sequence> =
            rows.iter().map(|r| Sequence::from_ids(r.clone())).collect();
        let sh = SensitiveSet::new(
            pats.iter().map(|p| Sequence::from_ids(p.clone())).collect(),
        );
        let config = Sanitizer::new(local, global, psi).with_seed(seed);
        let mut domain = MatchEngine::<Sat64>::new(&sh);
        let mut state = DeltaState::build(&config, &mut domain, originals.clone());

        let a1: Vec<Sequence> = add1.iter().map(|r| Sequence::from_ids(r.clone())).collect();
        let r1 = clamp_removals(&rm1, state.len());
        state
            .apply_delta(&mut domain, SeqDelta { added: a1.clone(), removed: r1.clone() })
            .unwrap();
        let after1 = mutate(&originals, &a1, &r1);

        let a2: Vec<Sequence> = add2.iter().map(|r| Sequence::from_ids(r.clone())).collect();
        let r2 = clamp_removals(&rm2, state.len());
        let report = state
            .apply_delta(&mut domain, SeqDelta { added: a2.clone(), removed: r2.clone() })
            .unwrap();
        let mut final_db = mutate(&after1, &a2, &r2);

        let full = config.run_domain_threaded(&mut final_db, &|| MatchEngine::<Sat64>::new(&sh));
        prop_assert_eq!(state.released(), &final_db[..]);
        prop_assert!(same_outcome(&report.report, &full));
    }

    /// ψ straddling the supporter count: deltas that push the database
    /// across the "nothing to do" boundary in both directions.
    #[test]
    fn psi_boundary_flips(
        n_sup in 0usize..6,
        extra in 0usize..3,
        psi in 0usize..6,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
    ) {
        // n_sup identical supporters of "0 1", plus noise rows.
        let mut rows: Vec<Vec<u32>> = (0..n_sup).map(|_| vec![0, 1, 2]).collect();
        rows.extend((0..extra).map(|_| vec![3, 4]));
        // Add supporters until selection must flip from empty to
        // non-empty (or grow), then remove down across the boundary.
        let added: Vec<Vec<u32>> = (0..psi + 1).map(|_| vec![0, 1]).collect();
        check_plain(
            &rows, &added, &[], &[vec![0, 1]], psi, seed, local, global,
            EngineMode::Incremental, false, 2,
        )?;
        let removed: Vec<usize> = (0..n_sup.min(2)).collect();
        check_plain(
            &rows, &[], &removed, &[vec![0, 1]], psi, seed, local, global,
            EngineMode::Incremental, false, 2,
        )?;
    }

    /// Itemset domain: hierarchical two-level marking, engine-backed.
    #[test]
    fn itemset_delta_equals_full_resanitize(
        rows in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..4, 1..=2), 0..=5),
            0..=8,
        ),
        added in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..4, 1..=2), 0..=5),
            0..=3,
        ),
        removed in prop::collection::vec(0usize..64, 0..=3),
        psi in 0usize..4,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
        threads in 1usize..3,
    ) {
        use seqhide::types::{Itemset, ItemsetSequence, Symbol};
        let build = |rows: &[Vec<Vec<u32>>]| -> Vec<ItemsetSequence> {
            rows.iter()
                .map(|row| {
                    ItemsetSequence::new(
                        row.iter()
                            .map(|e| Itemset::new(e.iter().map(|&i| Symbol::new(i)).collect()))
                            .collect(),
                    )
                })
                .collect()
        };
        let originals = build(&rows);
        let added = build(&added);
        let removed = clamp_removals(&removed, originals.len());
        let pattern = ItemsetPattern::new(
            ItemsetSequence::new(vec![Itemset::new(vec![Symbol::new(0), Symbol::new(1)])]),
            ConstraintSet::none(),
        )
        .unwrap();
        let patterns = vec![pattern];
        let config = Sanitizer::new(local, global, psi).with_seed(seed);

        let mut domain = ItemsetMatchEngine::<Sat64>::new(&patterns);
        let mut state = DeltaState::build(&config, &mut domain, originals.clone());
        let report = state
            .apply_delta(&mut domain, SeqDelta { added: added.clone(), removed: removed.clone() })
            .unwrap();

        let mut mutated = mutate(&originals, &added, &removed);
        let full = config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| ItemsetMatchEngine::<Sat64>::new(&patterns));
        prop_assert_eq!(state.released(), &mutated[..]);
        prop_assert!(same_outcome(&report.report, &full));
    }

    /// Timed domain: real-time-tagged events.
    #[test]
    fn timed_delta_equals_full_resanitize(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 0..=6), 0..=8),
        added in prop::collection::vec(prop::collection::vec(0u32..4, 0..=6), 0..=3),
        removed in prop::collection::vec(0usize..64, 0..=3),
        psi in 0usize..4,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
        threads in 1usize..3,
    ) {
        use seqhide::types::{Symbol, TimedEvent, TimedSequence};
        let build = |rows: &[Vec<u32>]| -> Vec<TimedSequence> {
            rows.iter()
                .map(|row| {
                    TimedSequence::new(
                        row.iter()
                            .enumerate()
                            .map(|(i, &s)| TimedEvent {
                                symbol: Symbol::new(s),
                                time: (i as u64) * 3,
                            })
                            .collect(),
                    )
                })
                .collect()
        };
        let originals = build(&rows);
        let added = build(&added);
        let removed = clamp_removals(&removed, originals.len());
        let pattern = TimedPattern::new(
            Sequence::from_ids(vec![0, 1]),
            TimeConstraints::none(),
        )
        .unwrap();
        let patterns = vec![pattern];
        let config = Sanitizer::new(local, global, psi).with_seed(seed);

        let mut domain = TimedDomain::<Sat64>::new(&patterns);
        let mut state = DeltaState::build(&config, &mut domain, originals.clone());
        let report = state
            .apply_delta(&mut domain, SeqDelta { added: added.clone(), removed: removed.clone() })
            .unwrap();

        let mut mutated = mutate(&originals, &added, &removed);
        let full = config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| TimedDomain::<Sat64>::new(&patterns));
        prop_assert_eq!(state.released(), &mutated[..]);
        prop_assert!(same_outcome(&report.report, &full));
    }

    /// String domain (contiguous substrings, Δ-marking op): the delta
    /// path must agree with a full run for the default mark operator.
    #[test]
    fn string_delta_equals_full_resanitize(
        rows in rows(),
        added in prop::collection::vec(prop::collection::vec(0u32..5, 0..=8), 0..=3),
        removed in prop::collection::vec(0usize..64, 0..=3),
        psi in 0usize..4,
        seed in 0u64..4,
        (local, global) in strategy_pair(),
        threads in 1usize..3,
    ) {
        let originals: Vec<Sequence> =
            rows.iter().map(|r| Sequence::from_ids(r.clone())).collect();
        let added: Vec<Sequence> =
            added.iter().map(|r| Sequence::from_ids(r.clone())).collect();
        let removed = clamp_removals(&removed, originals.len());
        let alphabet = Alphabet::anonymous(5);
        let patterns =
            vec![StringPattern::new(Sequence::from_ids(vec![0, 1])).unwrap()];
        let sigma_len = alphabet.len();
        let config = Sanitizer::new(local, global, psi).with_seed(seed);

        let mut domain = StringDomain::<Sat64>::new(&patterns, sigma_len);
        let mut state = DeltaState::build(&config, &mut domain, originals.clone());
        let report = state
            .apply_delta(&mut domain, SeqDelta { added: added.clone(), removed: removed.clone() })
            .unwrap();

        let mut mutated = mutate(&originals, &added, &removed);
        let full = config
            .with_threads(threads)
            .run_domain_threaded(&mut mutated, &|| {
                StringDomain::<Sat64>::new(&patterns, sigma_len)
            });
        prop_assert_eq!(state.released(), &mutated[..]);
        prop_assert!(same_outcome(&report.report, &full));
    }
}
