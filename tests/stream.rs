//! Equivalence suite for the two-pass streaming pipeline: `hide --stream`
//! must release the **same bytes** as the in-memory path on the same seed,
//! across every strategy, engine, thread count and batch size — the
//! determinism contract `docs/ALGORITHMS.md` §"Two-pass streaming" pins.
//!
//! The plain-pattern matrix exercises [`Sanitizer::run_streaming`]; the
//! itemset/timed/regex matrices drive the same generic
//! [`Sanitizer::run_streaming_domain`] the CLI uses, against
//! [`Sanitizer::run_domain_threaded`] as the in-memory oracle.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use seqhide::core::timed::{TimeConstraints, TimeGap, TimedPattern};
use seqhide::core::{EngineMode, GlobalStrategy, LocalStrategy, Sanitizer, TimedDomain};
use seqhide::data::io::{itemset_db_to_text, parse_itemset_db, parse_timed_db, timed_db_to_text};
use seqhide::data::{ItemsetCodec, PlainCodec, TimedCodec};
use seqhide::matching::itemset::ItemsetPattern;
use seqhide::matching::{ItemsetMatchEngine, SensitiveSet};
use seqhide::num::Sat64;
use seqhide::prelude::*;
use seqhide::re::{RegexDomain, RegexPattern};
use seqhide::string::{StringDomain, StringPattern};
use seqhide::types::OpKind;

static CASE: AtomicU64 = AtomicU64::new(0);

fn write_case(text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("seqhide-stream-equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "case-{}-{}.seq",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, text).unwrap();
    path
}

/// Runs both paths on the same input text; returns (memory bytes, memory
/// report, stream bytes, stream report).
fn both_paths(
    text: &str,
    patterns: &[String],
    sanitizer: &Sanitizer,
    batch: usize,
) -> (
    String,
    seqhide::core::SanitizeReport,
    String,
    seqhide::core::StreamReport,
) {
    let path = write_case(text);
    let mut db = SequenceDb::parse(text);
    let sh = SensitiveSet::new(
        patterns
            .iter()
            .map(|p| Sequence::parse(p, db.alphabet_mut()))
            .collect(),
    );
    let mem_report = sanitizer.run(&mut db, &sh);
    // The streaming path interns the patterns into a *fresh* alphabet
    // (symbol ids differ from the in-memory run); rendering is by name, so
    // the released bytes must still agree.
    let mut alphabet = Alphabet::new();
    let sh_s = SensitiveSet::new(
        patterns
            .iter()
            .map(|p| Sequence::parse(p, &mut alphabet))
            .collect(),
    );
    let mut out = Vec::new();
    let stream_report = sanitizer
        .run_streaming(&path, &mut alphabet, &sh_s, batch, &mut out)
        .unwrap();
    std::fs::remove_file(&path).unwrap();
    (
        db.to_text(),
        mem_report,
        String::from_utf8(out).unwrap(),
        stream_report,
    )
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=8), 1..=14).prop_map(
        |rows| {
            rows.iter()
                .map(|row| row.iter().map(|&i| NAMES[i]).collect::<Vec<_>>().join(" ") + "\n")
                .collect()
        },
    )
}

fn pattern_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=3), 1..=2).prop_map(
        |pats| {
            pats.iter()
                .map(|p| p.iter().map(|&i| NAMES[i]).collect::<Vec<_>>().join(" "))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_is_byte_identical_to_in_memory(
        text in text_strategy(),
        patterns in pattern_strategy(),
        psi in 0usize..4,
        (local, global) in (
            prop::sample::select(vec![LocalStrategy::Heuristic, LocalStrategy::Random]),
            prop::sample::select(vec![
                GlobalStrategy::Heuristic,
                GlobalStrategy::Random,
                GlobalStrategy::AutoCorrelation,
                GlobalStrategy::Length,
            ]),
        ),
        engine in prop::sample::select(vec![EngineMode::Incremental, EngineMode::Scratch]),
        threads in prop::sample::select(vec![1usize, 3]),
        batch in prop::sample::select(vec![1usize, 2, 7, 64]),
        seed in 0u64..3,
    ) {
        let sanitizer = Sanitizer::new(local, global, psi)
            .with_seed(seed)
            .with_engine(engine)
            .with_threads(threads);
        let (mem, mem_report, streamed, stream_report) =
            both_paths(&text, &patterns, &sanitizer, batch);
        prop_assert_eq!(&streamed, &mem, "released bytes diverged");
        prop_assert_eq!(&stream_report.report, &mem_report, "reports diverged");
        prop_assert!(stream_report.report.hidden);
        prop_assert_eq!(stream_report.sequences_total, text.lines().count());
    }
}

#[test]
fn no_supporters_edge_is_identical() {
    // Pattern symbols never occur in the database: pass 1 finds zero
    // supporters and pass 2 must degrade to a byte-exact copy.
    let text = "a b c\nd e\n";
    let sanitizer = Sanitizer::hh(0);
    let (mem, mem_report, streamed, stream_report) =
        both_paths(text, &["e a c".to_string()], &sanitizer, 2);
    assert_eq!(streamed, mem);
    assert_eq!(streamed, text);
    assert_eq!(stream_report.report, mem_report);
    assert_eq!(stream_report.report.supporters_before, 0);
    assert_eq!(stream_report.report.marks_introduced, 0);
}

#[test]
fn psi_zero_and_psi_spares_all_edges() {
    let text = "a c\na b c\nc a\na c b\n";
    for psi in [0usize, 10] {
        for batch in [1usize, 3, 100] {
            let sanitizer = Sanitizer::hh(psi).with_seed(5);
            let (mem, mem_report, streamed, stream_report) =
                both_paths(text, &["a c".to_string()], &sanitizer, batch);
            assert_eq!(streamed, mem, "psi={psi} batch={batch}");
            assert_eq!(stream_report.report, mem_report, "psi={psi} batch={batch}");
            if psi == 10 {
                // ψ ≥ supporters: nothing sanitized, clean copy
                assert_eq!(streamed, text);
            }
        }
    }
}

#[test]
fn exact_counts_streaming_agrees() {
    let text = "a b a b a\nb a b a b\na a b b a\n";
    let sanitizer = Sanitizer::hh(1).with_exact_counts(true);
    let (mem, mem_report, streamed, stream_report) =
        both_paths(text, &["a b a".to_string()], &sanitizer, 2);
    assert_eq!(streamed, mem);
    assert_eq!(stream_report.report, mem_report);
}

// ---------------------------------------------------------------------------
// Domain matrices: itemset / timed / regex through `run_streaming_domain`.
//
// The itemset distortion loop breaks δ-ties by ascending symbol id, so its
// determinism contract requires both paths to intern symbols in the same
// order (database first, patterns after — the CLI reproduces this with a
// bounded pre-pass over the input). Timed and regex decisions are
// positional, but the harness keeps the same shared-alphabet shape for all
// three so one helper covers them.
// ---------------------------------------------------------------------------

/// Space-joined plain rendering, matching [`SequenceDb::to_text`] and the
/// bytes `PlainCodec` writes.
fn plain_db_to_text(alphabet: &Alphabet, db: &[Sequence]) -> String {
    db.iter()
        .map(|t| {
            t.iter()
                .map(|&s| alphabet.render(s))
                .collect::<Vec<_>>()
                .join(" ")
                + "\n"
        })
        .collect()
}

fn strategy_matrix() -> impl Strategy<Value = (LocalStrategy, GlobalStrategy, usize, usize, u64)> {
    (
        prop::sample::select(vec![LocalStrategy::Heuristic, LocalStrategy::Random]),
        prop::sample::select(vec![
            GlobalStrategy::Heuristic,
            GlobalStrategy::Random,
            GlobalStrategy::AutoCorrelation,
            GlobalStrategy::Length,
        ]),
        prop::sample::select(vec![1usize, 3]),
        prop::sample::select(vec![1usize, 2, 64]),
        0u64..3,
    )
}

fn domain_sanitizer(
    (local, global, threads, _batch, seed): (LocalStrategy, GlobalStrategy, usize, usize, u64),
    psi: usize,
) -> Sanitizer {
    Sanitizer::new(local, global, psi)
        .with_seed(seed)
        .with_threads(threads)
}

/// In-memory vs streamed release for one domain: `parse` reads the text
/// into `(alphabet, db)`, `mem` runs the in-memory oracle and renders its
/// bytes, `stream` drives `run_streaming_domain` over the same alphabet.
fn assert_domain_parity<Seq2>(
    text: &str,
    batch: usize,
    parse: impl Fn(&str) -> (Alphabet, Vec<Seq2>),
    mem: impl FnOnce(&Alphabet, &mut Vec<Seq2>) -> seqhide::core::SanitizeReport,
    stream: impl FnOnce(
        &std::path::Path,
        &mut Alphabet,
        &mut Vec<u8>,
    ) -> std::io::Result<seqhide::core::StreamReport>,
    render: impl Fn(&Alphabet, &[Seq2]) -> String,
    label: &str,
) {
    let path = write_case(text);
    let (alphabet, mut db) = parse(text);
    let mem_report = mem(&alphabet, &mut db);
    let mem_bytes = render(&alphabet, &db);
    let mut stream_alphabet = alphabet.clone();
    let mut out = Vec::new();
    let stream_report = stream(&path, &mut stream_alphabet, &mut out).unwrap();
    std::fs::remove_file(&path).unwrap();
    let streamed = String::from_utf8(out).unwrap();
    assert_eq!(
        streamed, mem_bytes,
        "{label}: released bytes diverged (batch={batch})"
    );
    assert_eq!(
        stream_report.report, mem_report,
        "{label}: reports diverged (batch={batch})"
    );
    assert!(stream_report.report.hidden, "{label}: not hidden");
}

fn itemset_text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=3), 1..=6),
        1..=10,
    )
    .prop_map(|rows| {
        rows.iter()
            .map(|row| {
                row.iter()
                    .map(|elem| elem.iter().map(|&i| NAMES[i]).collect::<Vec<_>>().join(","))
                    .collect::<Vec<_>>()
                    .join(" ")
                    + "\n"
            })
            .collect()
    })
}

fn itemset_pattern_strategy() -> impl Strategy<Value = Vec<Vec<Vec<usize>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=2), 1..=2),
        1..=2,
    )
}

fn build_itemset_patterns(
    specs: &[Vec<Vec<usize>>],
    alphabet: &mut Alphabet,
) -> Vec<ItemsetPattern> {
    specs
        .iter()
        .map(|elems| {
            let elements: Vec<seqhide::types::Itemset> = elems
                .iter()
                .map(|items| {
                    seqhide::types::Itemset::new(
                        items.iter().map(|&i| alphabet.intern(NAMES[i])).collect(),
                    )
                })
                .collect();
            ItemsetPattern::new(
                seqhide::types::ItemsetSequence::new(elements),
                seqhide::matching::ConstraintSet::none(),
            )
            .unwrap()
        })
        .collect()
}

fn timed_text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::collection::vec((0usize..NAMES.len(), 0u64..40), 1..=8),
        1..=10,
    )
    .prop_map(|rows| {
        rows.iter()
            .map(|row| {
                let mut tick = 0u64;
                row.iter()
                    .map(|&(i, gap)| {
                        tick += gap;
                        format!("{}@{tick}", NAMES[i])
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
                    + "\n"
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn itemset_streaming_is_byte_identical(
        text in itemset_text_strategy(),
        specs in itemset_pattern_strategy(),
        psi in 0usize..3,
        knobs in strategy_matrix(),
    ) {
        let batch = knobs.3;
        let sanitizer = domain_sanitizer(knobs, psi);
        assert_domain_parity(
            &text,
            batch,
            parse_itemset_db,
            |alphabet, db| {
                // Same intern order as the streaming side: database
                // symbols first (already in `alphabet`), patterns after.
                let patterns = build_itemset_patterns(&specs, &mut alphabet.clone());
                sanitizer.run_domain_threaded(db, &|| ItemsetMatchEngine::<Sat64>::new(&patterns))
            },
            |path, alphabet, out| {
                let patterns = build_itemset_patterns(&specs, alphabet);
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &ItemsetCodec,
                    &|| ItemsetMatchEngine::<Sat64>::new(&patterns),
                    batch,
                    out,
                )
            },
            itemset_db_to_text,
            "itemset",
        );
    }

    #[test]
    fn timed_streaming_is_byte_identical(
        text in timed_text_strategy(),
        pat in prop::collection::vec(0usize..NAMES.len(), 1..=3),
        max_gap in prop::option::of(1u64..60),
        psi in 0usize..3,
        knobs in strategy_matrix(),
    ) {
        let batch = knobs.3;
        let sanitizer = domain_sanitizer(knobs, psi);
        let tc = match max_gap {
            Some(max) => TimeConstraints::uniform_gap(TimeGap { min: 0, max: Some(max) }),
            None => TimeConstraints::none(),
        };
        let pattern_text: String = pat
            .iter()
            .map(|&i| NAMES[i])
            .collect::<Vec<_>>()
            .join(" ");
        let build = |alphabet: &mut Alphabet| {
            vec![TimedPattern::new(Sequence::parse(&pattern_text, alphabet), tc.clone()).unwrap()]
        };
        assert_domain_parity(
            &text,
            batch,
            |t| parse_timed_db(t).unwrap(),
            |alphabet, db| {
                let patterns = build(&mut alphabet.clone());
                sanitizer.run_domain_threaded(db, &|| TimedDomain::<Sat64>::new(&patterns))
            },
            |path, alphabet, out| {
                let patterns = build(alphabet);
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &TimedCodec,
                    &|| TimedDomain::<Sat64>::new(&patterns),
                    batch,
                    out,
                )
            },
            timed_db_to_text,
            "timed",
        );
    }

    #[test]
    fn regex_streaming_is_byte_identical(
        text in text_strategy(),
        regex in prop::sample::select(vec![
            "a (b | c)",
            "a b+",
            "(a | b) c",
            "a [b c]+ d",
        ]),
        psi in 0usize..3,
        knobs in strategy_matrix(),
    ) {
        let batch = knobs.3;
        let sanitizer = domain_sanitizer(knobs, psi);
        assert_domain_parity(
            &text,
            batch,
            |t| {
                let db = SequenceDb::parse(t);
                (db.alphabet().clone(), db.sequences().to_vec())
            },
            |alphabet, db| {
                let regexes =
                    vec![RegexPattern::compile(regex, &mut alphabet.clone()).unwrap()];
                sanitizer.run_domain_threaded(db, &|| RegexDomain::<Sat64>::new(&regexes))
            },
            |path, alphabet, out| {
                let regexes = vec![RegexPattern::compile(regex, alphabet).unwrap()];
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &PlainCodec,
                    &|| RegexDomain::<Sat64>::new(&regexes),
                    batch,
                    out,
                )
            },
            plain_db_to_text,
            "regex",
        );
    }
}

// ---------------------------------------------------------------------------
// String domain: HH/HR/RH/RR × threads × batch × the three DistortOp
// families. The substitution operator breaks ties by ascending interned
// symbol id, so — like itemset — both paths must intern the database
// before the patterns; `SequenceDb::parse` on the input text reproduces
// the streaming pre-pass's file-order interning exactly.
// ---------------------------------------------------------------------------

fn build_string_patterns(texts: &[String], alphabet: &mut Alphabet) -> Vec<StringPattern> {
    texts
        .iter()
        .map(|p| StringPattern::new(Sequence::parse(p, alphabet)).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn string_streaming_is_byte_identical_and_creates_no_occurrences(
        text in text_strategy(),
        patterns in pattern_strategy(),
        op in prop::sample::select(vec![OpKind::Mark, OpKind::Delete, OpKind::Substitute]),
        psi in 0usize..3,
        knobs in strategy_matrix(),
    ) {
        let batch = knobs.3;
        let sanitizer = domain_sanitizer(knobs, psi);
        // in-memory oracle: database interned first, patterns after (the
        // CLI order on both of its paths)
        let mut db = SequenceDb::parse(&text);
        let pats = build_string_patterns(&patterns, db.alphabet_mut());
        let sigma_len = db.alphabet().len();
        let mem_report = sanitizer.run_domain_threaded(db.sequences_mut(), &|| {
            StringDomain::<Sat64>::new(&pats, sigma_len).with_op(op)
        });
        let mem = db.to_text();
        prop_assert!(mem_report.hidden, "op={op}: not hidden");
        // streamed release over a fresh file-order alphabet
        let path = write_case(&text);
        let mut alphabet = SequenceDb::parse(&text).alphabet().clone();
        let spats = build_string_patterns(&patterns, &mut alphabet);
        let s_sigma = alphabet.len();
        let mut out = Vec::new();
        let stream_report = sanitizer
            .run_streaming_domain(
                &path,
                &mut alphabet,
                &PlainCodec,
                &|| StringDomain::<Sat64>::new(&spats, s_sigma).with_op(op),
                batch,
                &mut out,
            )
            .unwrap();
        std::fs::remove_file(&path).unwrap();
        let streamed = String::from_utf8(out).unwrap();
        prop_assert_eq!(&streamed, &mem, "op={} released bytes diverged", op);
        prop_assert_eq!(&stream_report.report, &mem_report, "op={} reports diverged", op);
        // The no-new-occurrence invariant, re-counted from the released
        // bytes with a fresh engine: an edit may destroy occurrences and
        // may not create any, so every pattern's support is ≤ ψ no matter
        // which operator family ran.
        let mut released = SequenceDb::parse(&mem);
        let rpats = build_string_patterns(&patterns, released.alphabet_mut());
        let rsigma = released.alphabet().len();
        let mut verifier = StringDomain::<Sat64>::new(&rpats, rsigma);
        for k in 0..rpats.len() {
            let mut supporters = 0;
            for t in released.sequences() {
                if seqhide::matching::PatternDomain::supports_pattern(&mut verifier, t, k) {
                    supporters += 1;
                }
            }
            prop_assert!(
                supporters <= psi,
                "op={op}: pattern {k} support {supporters} > ψ {psi} in:\n{mem}"
            );
        }
    }
}

#[test]
fn domain_no_supporter_and_psi_edges() {
    // Pattern absent from the database → pass 1 finds nothing and pass 2
    // must degrade to a byte-exact copy; ψ ≥ supporters behaves the same.
    let itemset_text = "a,b c\nb d\n";
    let timed_text = "a@0 b@5\nc@0 d@9\n";
    let plain_text = "a b c\nc b a\n";
    for psi in [0usize, 10] {
        let sanitizer = Sanitizer::hh(psi).with_seed(3);
        assert_domain_parity(
            itemset_text,
            1,
            parse_itemset_db,
            |alphabet, db| {
                let patterns =
                    build_itemset_patterns(&[vec![vec![4], vec![4]]], &mut alphabet.clone());
                sanitizer.run_domain_threaded(db, &|| ItemsetMatchEngine::<Sat64>::new(&patterns))
            },
            |path, alphabet, out| {
                let patterns = build_itemset_patterns(&[vec![vec![4], vec![4]]], alphabet);
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &ItemsetCodec,
                    &|| ItemsetMatchEngine::<Sat64>::new(&patterns),
                    1,
                    out,
                )
            },
            itemset_db_to_text,
            "itemset-edge",
        );
        assert_domain_parity(
            timed_text,
            1,
            |t| parse_timed_db(t).unwrap(),
            |alphabet, db| {
                let mut a = alphabet.clone();
                let patterns = vec![TimedPattern::new(
                    Sequence::parse("e e", &mut a),
                    TimeConstraints::none(),
                )
                .unwrap()];
                sanitizer.run_domain_threaded(db, &|| TimedDomain::<Sat64>::new(&patterns))
            },
            |path, alphabet, out| {
                let patterns = vec![TimedPattern::new(
                    Sequence::parse("e e", alphabet),
                    TimeConstraints::none(),
                )
                .unwrap()];
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &TimedCodec,
                    &|| TimedDomain::<Sat64>::new(&patterns),
                    1,
                    out,
                )
            },
            timed_db_to_text,
            "timed-edge",
        );
        assert_domain_parity(
            plain_text,
            1,
            |t| {
                let db = SequenceDb::parse(t);
                (db.alphabet().clone(), db.sequences().to_vec())
            },
            |alphabet, db| {
                let regexes = vec![RegexPattern::compile("e e+", &mut alphabet.clone()).unwrap()];
                sanitizer.run_domain_threaded(db, &|| RegexDomain::<Sat64>::new(&regexes))
            },
            |path, alphabet, out| {
                let regexes = vec![RegexPattern::compile("e e+", alphabet).unwrap()];
                sanitizer.run_streaming_domain(
                    path,
                    alphabet,
                    &PlainCodec,
                    &|| RegexDomain::<Sat64>::new(&regexes),
                    1,
                    out,
                )
            },
            plain_db_to_text,
            "regex-edge",
        );
    }
}
