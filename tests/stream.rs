//! Equivalence suite for the two-pass streaming pipeline: `hide --stream`
//! must release the **same bytes** as the in-memory path on the same seed,
//! across every strategy, engine, thread count and batch size — the
//! determinism contract `docs/ALGORITHMS.md` §"Two-pass streaming" pins.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use seqhide::core::{EngineMode, GlobalStrategy, LocalStrategy, Sanitizer};
use seqhide::matching::SensitiveSet;
use seqhide::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn write_case(text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("seqhide-stream-equiv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "case-{}-{}.seq",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, text).unwrap();
    path
}

/// Runs both paths on the same input text; returns (memory bytes, memory
/// report, stream bytes, stream report).
fn both_paths(
    text: &str,
    patterns: &[String],
    sanitizer: &Sanitizer,
    batch: usize,
) -> (
    String,
    seqhide::core::SanitizeReport,
    String,
    seqhide::core::StreamReport,
) {
    let path = write_case(text);
    let mut db = SequenceDb::parse(text);
    let sh = SensitiveSet::new(
        patterns
            .iter()
            .map(|p| Sequence::parse(p, db.alphabet_mut()))
            .collect(),
    );
    let mem_report = sanitizer.run(&mut db, &sh);
    // The streaming path interns the patterns into a *fresh* alphabet
    // (symbol ids differ from the in-memory run); rendering is by name, so
    // the released bytes must still agree.
    let mut alphabet = Alphabet::new();
    let sh_s = SensitiveSet::new(
        patterns
            .iter()
            .map(|p| Sequence::parse(p, &mut alphabet))
            .collect(),
    );
    let mut out = Vec::new();
    let stream_report = sanitizer
        .run_streaming(&path, &mut alphabet, &sh_s, batch, &mut out)
        .unwrap();
    std::fs::remove_file(&path).unwrap();
    (
        db.to_text(),
        mem_report,
        String::from_utf8(out).unwrap(),
        stream_report,
    )
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=8), 1..=14).prop_map(
        |rows| {
            rows.iter()
                .map(|row| row.iter().map(|&i| NAMES[i]).collect::<Vec<_>>().join(" ") + "\n")
                .collect()
        },
    )
}

fn pattern_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(prop::collection::vec(0usize..NAMES.len(), 1..=3), 1..=2).prop_map(
        |pats| {
            pats.iter()
                .map(|p| p.iter().map(|&i| NAMES[i]).collect::<Vec<_>>().join(" "))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_is_byte_identical_to_in_memory(
        text in text_strategy(),
        patterns in pattern_strategy(),
        psi in 0usize..4,
        (local, global) in (
            prop::sample::select(vec![LocalStrategy::Heuristic, LocalStrategy::Random]),
            prop::sample::select(vec![
                GlobalStrategy::Heuristic,
                GlobalStrategy::Random,
                GlobalStrategy::AutoCorrelation,
                GlobalStrategy::Length,
            ]),
        ),
        engine in prop::sample::select(vec![EngineMode::Incremental, EngineMode::Scratch]),
        threads in prop::sample::select(vec![1usize, 3]),
        batch in prop::sample::select(vec![1usize, 2, 7, 64]),
        seed in 0u64..3,
    ) {
        let sanitizer = Sanitizer::new(local, global, psi)
            .with_seed(seed)
            .with_engine(engine)
            .with_threads(threads);
        let (mem, mem_report, streamed, stream_report) =
            both_paths(&text, &patterns, &sanitizer, batch);
        prop_assert_eq!(&streamed, &mem, "released bytes diverged");
        prop_assert_eq!(&stream_report.report, &mem_report, "reports diverged");
        prop_assert!(stream_report.report.hidden);
        prop_assert_eq!(stream_report.sequences_total, text.lines().count());
    }
}

#[test]
fn no_supporters_edge_is_identical() {
    // Pattern symbols never occur in the database: pass 1 finds zero
    // supporters and pass 2 must degrade to a byte-exact copy.
    let text = "a b c\nd e\n";
    let sanitizer = Sanitizer::hh(0);
    let (mem, mem_report, streamed, stream_report) =
        both_paths(text, &["e a c".to_string()], &sanitizer, 2);
    assert_eq!(streamed, mem);
    assert_eq!(streamed, text);
    assert_eq!(stream_report.report, mem_report);
    assert_eq!(stream_report.report.supporters_before, 0);
    assert_eq!(stream_report.report.marks_introduced, 0);
}

#[test]
fn psi_zero_and_psi_spares_all_edges() {
    let text = "a c\na b c\nc a\na c b\n";
    for psi in [0usize, 10] {
        for batch in [1usize, 3, 100] {
            let sanitizer = Sanitizer::hh(psi).with_seed(5);
            let (mem, mem_report, streamed, stream_report) =
                both_paths(text, &["a c".to_string()], &sanitizer, batch);
            assert_eq!(streamed, mem, "psi={psi} batch={batch}");
            assert_eq!(stream_report.report, mem_report, "psi={psi} batch={batch}");
            if psi == 10 {
                // ψ ≥ supporters: nothing sanitized, clean copy
                assert_eq!(streamed, text);
            }
        }
    }
}

#[test]
fn exact_counts_streaming_agrees() {
    let text = "a b a b a\nb a b a b\na a b b a\n";
    let sanitizer = Sanitizer::hh(1).with_exact_counts(true);
    let (mem, mem_report, streamed, stream_report) =
        both_paths(text, &["a b a".to_string()], &sanitizer, 2);
    assert_eq!(streamed, mem);
    assert_eq!(stream_report.report, mem_report);
}
