//! Workspace-level property tests: the sanitizer's contract holds on
//! arbitrary databases, sensitive sets, thresholds and strategies.

use proptest::prelude::*;
use seqhide::core::post::delete_markers;
use seqhide::core::{verify_hidden, GlobalStrategy, LocalStrategy, Sanitizer};
use seqhide::matching::{support_of_pattern, supports, ConstraintSet, Gap, SensitivePattern};
use seqhide::mine::{MinerConfig, PrefixSpan};
use seqhide::prelude::*;

fn db_strategy() -> impl Strategy<Value = SequenceDb> {
    prop::collection::vec(prop::collection::vec(0u32..5, 0..=10), 1..=12).prop_map(|rows| {
        let alphabet = seqhide::types::Alphabet::anonymous(5);
        SequenceDb::from_parts(alphabet, rows.into_iter().map(Sequence::from_ids).collect())
    })
}

fn sensitive_strategy() -> impl Strategy<Value = SensitiveSet> {
    prop::collection::vec(prop::collection::vec(0u32..5, 1..=3), 1..=3)
        .prop_map(|pats| SensitiveSet::new(pats.into_iter().map(Sequence::from_ids).collect()))
}

fn strategy_pair() -> impl Strategy<Value = (LocalStrategy, GlobalStrategy)> {
    (
        prop::sample::select(vec![LocalStrategy::Heuristic, LocalStrategy::Random]),
        prop::sample::select(vec![
            GlobalStrategy::Heuristic,
            GlobalStrategy::Random,
            GlobalStrategy::AutoCorrelation,
            GlobalStrategy::Length,
        ]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sanitizer_always_hides(
        db in db_strategy(),
        sh in sensitive_strategy(),
        psi in 0usize..6,
        (local, global) in strategy_pair(),
        seed in 0u64..4,
    ) {
        let mut work = db.clone();
        let report = Sanitizer::new(local, global, psi)
            .with_seed(seed)
            .run(&mut work, &sh);
        prop_assert!(report.hidden);
        for p in &sh {
            prop_assert!(support_of_pattern(&work, p) <= psi);
        }
        prop_assert_eq!(report.marks_introduced, work.total_marks());
        prop_assert_eq!(report.residual_supports.len(), sh.len());
    }

    #[test]
    fn untouched_rows_and_shape_preserved(
        db in db_strategy(),
        sh in sensitive_strategy(),
        psi in 0usize..4,
    ) {
        let mut work = db.clone();
        Sanitizer::hh(psi).run(&mut work, &sh);
        prop_assert_eq!(work.len(), db.len());
        for (orig, got) in db.sequences().iter().zip(work.sequences()) {
            // lengths never change (marking is in-place)
            prop_assert_eq!(orig.len(), got.len());
            // unmarked positions keep their symbols
            for i in 0..orig.len() {
                if !got[i].is_mark() {
                    prop_assert_eq!(orig[i], got[i]);
                }
            }
            // non-supporters are untouched
            if sh.iter().all(|p| !supports(orig, p)) {
                prop_assert_eq!(orig, got);
            }
        }
    }

    #[test]
    fn exact_and_saturating_counts_agree_on_small_data(
        db in db_strategy(),
        sh in sensitive_strategy(),
        psi in 0usize..4,
    ) {
        let mut fast = db.clone();
        let mut exact = db.clone();
        let r1 = Sanitizer::hh(psi).run(&mut fast, &sh);
        let r2 = Sanitizer::hh(psi).with_exact_counts(true).run(&mut exact, &sh);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(fast.to_text(), exact.to_text());
    }

    #[test]
    fn frequent_patterns_only_shrink(
        db in db_strategy(),
        sh in sensitive_strategy(),
        psi in 0usize..4,
        sigma in 1usize..4,
    ) {
        let mut work = db.clone();
        Sanitizer::hh(psi).run(&mut work, &sh);
        let before = PrefixSpan::mine(&db, &MinerConfig::new(sigma)).to_map();
        let after = PrefixSpan::mine(&work, &MinerConfig::new(sigma));
        for fp in &after.patterns {
            let b = before.get(&fp.seq);
            prop_assert!(b.is_some(), "fake frequent pattern {:?}", fp.seq);
            prop_assert!(fp.support <= *b.unwrap());
        }
    }

    #[test]
    fn deletion_release_is_hidden_for_unconstrained(
        db in db_strategy(),
        sh in sensitive_strategy(),
        psi in 0usize..4,
    ) {
        let mut work = db.clone();
        Sanitizer::hh(psi).run(&mut work, &sh);
        let released = delete_markers(&work);
        prop_assert_eq!(released.total_marks(), 0);
        prop_assert!(verify_hidden(&released, &sh, psi).hidden);
    }

    #[test]
    fn constrained_sanitizer_hides_constrained_patterns(
        db in db_strategy(),
        pat in prop::collection::vec(0u32..5, 1..=3),
        max_gap in 0usize..3,
        psi in 0usize..3,
    ) {
        let p = SensitivePattern::new(
            Sequence::from_ids(pat),
            ConstraintSet::uniform_gap(Gap::bounded(0, max_gap)),
        ).unwrap();
        let sh = SensitiveSet::from_patterns(vec![p.clone()]);
        let mut work = db.clone();
        let report = Sanitizer::hh(psi).run(&mut work, &sh);
        prop_assert!(report.hidden);
        prop_assert!(support_of_pattern(&work, &p) <= psi);
    }

    #[test]
    fn marks_are_bounded_by_total_symbols(
        db in db_strategy(),
        sh in sensitive_strategy(),
    ) {
        let mut work = db.clone();
        let report = Sanitizer::rr(0).run(&mut work, &sh);
        prop_assert!(report.marks_introduced <= db.stats().total_symbols);
    }
}
