//! Every worked example and formal construction in the paper, verified
//! through the public API end to end.

use seqhide::core::{LocalStrategy, Sanitizer};
use seqhide::matching::enumerate::{enumerate_embeddings, EnumerateConfig};
use seqhide::matching::{
    count_embeddings, count_matches, delta_all, matching_size, ConstraintSet, Gap, SensitivePattern,
};
use seqhide::num::Count as _;
use seqhide::prelude::*;
use seqhide::types::Alphabet;

/// S = ⟨a b c⟩, T = ⟨a a b c c b a e⟩ — the running example of §3–§4.
fn paper_running_example() -> (Alphabet, Sequence, Sequence) {
    let mut sigma = Alphabet::new();
    let s = Sequence::parse("a b c", &mut sigma);
    let t = Sequence::parse("a a b c c b a e", &mut sigma);
    (sigma, s, t)
}

#[test]
fn definition_1_matching_set() {
    // Paper: M = {(1,3,4), (1,3,5), (2,3,4), (2,3,5)} (1-based).
    let (_, s, t) = paper_running_example();
    let p = SensitivePattern::unconstrained(s.clone()).unwrap();
    let m = enumerate_embeddings(&p, &t, EnumerateConfig::default());
    let one_based: Vec<Vec<usize>> = m
        .embeddings
        .iter()
        .map(|e| e.iter().map(|i| i + 1).collect())
        .collect();
    assert_eq!(
        one_based,
        vec![vec![1, 3, 4], vec![1, 3, 5], vec![2, 3, 4], vec![2, 3, 5]]
    );
    assert_eq!(count_embeddings::<u64>(&s, &t), 4);
}

#[test]
fn example_1_marking_effects() {
    // Marking T[8] = e leaves the matching set unchanged; marking T[3] = b
    // empties it; marking T[1] alone reduces without sanitizing; marking
    // T[1] and T[2] together sanitizes.
    let (_, s, t) = paper_running_example();
    let sh = SensitiveSet::new(vec![s.clone()]);

    let mut t8 = t.clone();
    t8.mark(7);
    assert_eq!(count_embeddings::<u64>(&s, &t8), 4);

    let mut t3 = t.clone();
    t3.mark(2);
    assert_eq!(count_embeddings::<u64>(&s, &t3), 0);

    let mut t1 = t.clone();
    t1.mark(0);
    let after_t1 = count_embeddings::<u64>(&s, &t1);
    assert!(after_t1 > 0 && after_t1 < 4);

    t1.mark(1);
    assert_eq!(count_embeddings::<u64>(&s, &t1), 0);
    assert!(matching_size::<u64>(&sh, &t1).is_zero());
}

#[test]
fn example_2_delta_values_and_choice() {
    // δ(T[1]) = 2, δ(T[2]) = 2, δ(T[3]) = 4; the heuristic marks T[3] and
    // one iteration suffices.
    let (_, s, t) = paper_running_example();
    let sh = SensitiveSet::new(vec![s]);
    let d = delta_all::<u64>(&sh, &t);
    assert_eq!(d[0], 2);
    assert_eq!(d[1], 2);
    assert_eq!(d[2], 4);
    let mut t2 = t.clone();
    use rand::SeedableRng as _;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
    let marks = seqhide::core::local::sanitize_sequence::<seqhide::num::Sat64, _>(
        &mut t2,
        &sh,
        LocalStrategy::Heuristic,
        &mut rng,
    );
    assert_eq!(marks, 1);
    assert!(t2[2].is_mark());
}

#[test]
fn example_3_prefix_counts() {
    // P₂³ = 2: the length-2 prefix ⟨a b⟩ has 2 matches ending exactly at
    // T[3] (1-based).
    let (_, s, t) = paper_running_example();
    let table = seqhide::matching::counting::ending_at_table::<u64>(
        &s,
        t.symbols(),
        &ConstraintSet::none(),
    );
    assert_eq!(table[1][2], 2);
}

#[test]
fn section5_gap_constrained_pattern_not_supported() {
    // a →⁰ b →₂⁶ c is NOT supported by T, although ⟨a b c⟩ is (with
    // matching set of cardinality 4).
    let (_, s, t) = paper_running_example();
    assert_eq!(count_embeddings::<u64>(&s, &t), 4);
    let constrained = SensitivePattern::new(
        s,
        ConstraintSet::with_gaps(vec![Gap::adjacent(), Gap::bounded(2, 6)]),
    )
    .unwrap();
    assert_eq!(count_matches::<u64>(&constrained, &t), 0);
}

#[test]
fn lemma_1_worst_case_is_binomial() {
    // S and T over one symbol: |M| = C(|T|, |S|); the middle binomial is
    // the largest.
    let s = Sequence::from_ids(vec![0; 5]);
    let t = Sequence::from_ids(vec![0; 10]);
    assert_eq!(count_embeddings::<u64>(&s, &t), 252); // C(10,5)
    for k in 0..=10usize {
        let sk = Sequence::from_ids(vec![0; k]);
        let c = count_embeddings::<u64>(&sk, &t);
        assert!(c <= 252);
    }
}

/// The Theorem 1 reduction: HITTING SET ≤ Sequence Sanitization.
/// E = {1..n}, C = pairs; T = ⟨p₁…p_n⟩, S_h = {⟨p_j p_k⟩ : (j,k) ∈ C}.
/// Positions marked by any sound sanitizer must hit every pair, and the
/// heuristic should find a *minimum* hitting set on easy instances.
#[test]
fn theorem_1_reduction_yields_hitting_sets() {
    let n = 6;
    let pairs: Vec<(usize, usize)> = vec![(1, 2), (2, 3), (2, 5), (4, 5), (5, 6)];
    let t = Sequence::from_ids(0..n as u32);
    let patterns: Vec<Sequence> = pairs
        .iter()
        .map(|&(j, k)| Sequence::from_ids([j as u32 - 1, k as u32 - 1]))
        .collect();
    let sh = SensitiveSet::new(patterns);
    let mut work = t.clone();
    use rand::SeedableRng as _;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
    let marks = seqhide::core::local::sanitize_sequence::<seqhide::num::Sat64, _>(
        &mut work,
        &sh,
        LocalStrategy::Heuristic,
        &mut rng,
    );
    // the marked positions form a hitting set of C
    let marked: Vec<usize> = (0..n)
        .filter(|&i| work[i].is_mark())
        .map(|i| i + 1)
        .collect();
    for &(j, k) in &pairs {
        assert!(
            marked.contains(&j) || marked.contains(&k),
            "pair ({j},{k}) not hit by {marked:?}"
        );
    }
    // {2, 5} hits every pair, so the optimum is 2 — and δ(2) = 3, δ(5) = 3
    // make the greedy heuristic find exactly it.
    assert_eq!(marks, 2);
    assert_eq!(marked, vec![2, 5]);
}

#[test]
fn global_heuristic_sorting_matches_paper_rule() {
    // "sort the sequences in ascending order of matching set size, and
    // remove all matchings in top |D| − ψ input sequences"
    let mut db = SequenceDb::parse("a b\na a b b\na b b\nc c\n");
    let s = Sequence::parse("a b", db.alphabet_mut());
    let sh = SensitiveSet::new(vec![s.clone()]);
    // matching sizes: row0 = 1, row1 = 4, row2 = 2, row3 = 0
    let report = Sanitizer::hh(1).run(&mut db, &sh);
    assert!(report.hidden);
    // ψ = 1 leaves exactly the largest-matching-set supporter (row 1) intact
    assert_eq!(db.sequences()[1].mark_count(), 0);
    assert!(db.sequences()[0].mark_count() > 0);
    assert!(db.sequences()[2].mark_count() > 0);
    assert_eq!(db.sequences()[3].mark_count(), 0); // non-supporter untouched
    assert_eq!(support(&db, &s), 1);
}
