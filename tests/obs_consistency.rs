//! Cross-checks the observability layer against the sanitizer's own
//! report: the global obs counters must agree exactly with what the
//! [`SanitizeReport`] claims, across every algorithm variant, engine mode
//! and constraint class — and the report's residual supports must agree
//! with an independent [`verify_hidden`] pass on the released database.
//!
//! The obs sinks are process-global, so everything here lives in one test
//! function: scenarios run sequentially and each isolates its own
//! contribution with a snapshot diff.

use seqhide_core::{verify_hidden, EngineMode, GlobalStrategy, LocalStrategy, Sanitizer};
use seqhide_match::{ConstraintSet, Gap, SensitivePattern, SensitiveSet};
use seqhide_obs::{self as obs, Counter};
use seqhide_types::SequenceDb;

const DB_TEXT: &str = "\
a b c a b\n\
b a c b a\n\
c c a b a\n\
a c b\n\
a b a b a\n\
b c a c\n\
x y z\n\
a b c\n";

fn sensitive(db: &mut SequenceDb, cs: &ConstraintSet) -> SensitiveSet {
    let texts = ["a b", "c a"];
    SensitiveSet::from_patterns(
        texts
            .iter()
            .map(|t| {
                let seq = seqhide_types::Sequence::parse(t, db.alphabet_mut());
                SensitivePattern::new(seq, cs.clone()).expect("valid pattern")
            })
            .collect(),
    )
}

#[test]
fn counters_match_report_across_variants() {
    let algorithms = [
        (LocalStrategy::Heuristic, GlobalStrategy::Heuristic, "hh"),
        (LocalStrategy::Heuristic, GlobalStrategy::Random, "hr"),
        (LocalStrategy::Random, GlobalStrategy::Heuristic, "rh"),
        (LocalStrategy::Random, GlobalStrategy::Random, "rr"),
    ];
    let engines = [EngineMode::Incremental, EngineMode::Scratch];
    let constraint_classes = [
        ("none", ConstraintSet::none()),
        (
            "gap",
            ConstraintSet::uniform_gap(Gap {
                min: 0,
                max: Some(2),
            }),
        ),
        ("window", ConstraintSet::with_max_window(3)),
    ];
    let psi = 1;
    for (local, global, alg_name) in algorithms {
        for engine in engines {
            for (cs_name, cs) in &constraint_classes {
                let ctx = format!("{alg_name}/{engine:?}/{cs_name}");
                let mut db = SequenceDb::parse(DB_TEXT);
                let sh = sensitive(&mut db, cs);
                let before = obs::snapshot();
                let report = Sanitizer::new(local, global, psi)
                    .with_seed(11)
                    .with_engine(engine)
                    .run(&mut db, &sh);
                let run = obs::snapshot().diff(&before);
                assert!(report.hidden, "{ctx}: sanitizer must hide");
                // the released database independently verifies to the same
                // residual supports the report claims
                let check = verify_hidden(&db, &sh, psi);
                assert_eq!(
                    check.supports, report.residual_supports,
                    "{ctx}: verify_hidden disagrees with the report"
                );
                assert!(check.hidden, "{ctx}");
                if engine == EngineMode::Scratch {
                    assert_eq!(report.engine_repairs, 0, "{ctx}");
                    assert_eq!(report.fallback_recounts, 0, "{ctx}");
                }
                if !obs::is_enabled() {
                    continue;
                }
                assert_eq!(
                    run.counter(Counter::MarksIntroduced),
                    report.marks_introduced as u64,
                    "{ctx}: marks counter vs report"
                );
                assert_eq!(
                    run.counter(Counter::VictimsProcessed),
                    report.sequences_sanitized as u64,
                    "{ctx}: victims counter vs report"
                );
                assert_eq!(
                    run.counter(Counter::EngineCellRepairs),
                    report.engine_repairs as u64,
                    "{ctx}: repair counter vs report"
                );
                assert_eq!(
                    run.counter(Counter::FallbackRecounts),
                    report.fallback_recounts as u64,
                    "{ctx}: fallback counter vs report"
                );
                // the victim-marks histogram saw one observation per victim
                // and sums to the total marks
                let h = run.hist(obs::Hist::VictimMarks);
                assert_eq!(h.count, report.sequences_sanitized as u64, "{ctx}");
                assert_eq!(h.sum, report.marks_introduced as u64, "{ctx}");
                // the span tree recorded the phases this run visited
                assert!(run.phase(obs::Phase::Sanitize).calls >= 1, "{ctx}");
                assert_eq!(
                    run.phase(obs::Phase::LocalSanitize).calls,
                    report.sequences_sanitized as u64,
                    "{ctx}: one local span per victim"
                );
                assert!(run.phase(obs::Phase::Verify).calls >= 1, "{ctx}");
            }
        }
    }
}
