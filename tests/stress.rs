//! Scale tests: the pipeline at sizes well beyond the paper's datasets.
//! Kept fast enough for the normal test run (a few seconds in debug) but
//! large enough to surface quadratic blowups and stack issues.

use seqhide::core::Sanitizer;
use seqhide::data::{markov_db, random_db, zipf_db};
use seqhide::matching::{count_embeddings, delta_all, support, SensitiveSet};
use seqhide::mine::{MinerConfig, PrefixSpan};
use seqhide::num::{BigCount, Count, Sat64};
use seqhide::prelude::*;

#[test]
fn hide_on_five_thousand_sequences() {
    let mut db = markov_db(1, 5_000, (8, 16), 40, 0.7);
    let mut sigma = db.alphabet().clone();
    let s1 = Sequence::parse("s3 s4", &mut sigma);
    let s2 = Sequence::parse("s10 s11 s12", &mut sigma);
    let sh = SensitiveSet::new(vec![s1.clone(), s2.clone()]);
    let before = support(&db, &s1);
    assert!(before > 100, "workload sanity: {before}");
    let report = Sanitizer::hh(50).run(&mut db, &sh);
    assert!(report.hidden);
    assert!(support(&db, &s1) <= 50);
    assert!(support(&db, &s2) <= 50);
}

#[test]
fn counting_on_very_long_sequences() {
    // n = 5000, worst-case unary content: |M| = C(5000, 3) ≈ 2·10^10
    let s = Sequence::from_ids(vec![0; 3]);
    let t = Sequence::from_ids(vec![0; 5_000]);
    let sat = count_embeddings::<Sat64>(&s, &t);
    let exact = count_embeddings::<BigCount>(&s, &t);
    assert_eq!(sat.get(), 20_820_835_000); // C(5000,3)
    assert_eq!(exact.to_string(), "20820835000");
    assert!(!sat.is_saturated());
}

#[test]
fn delta_on_long_mixed_sequence() {
    let db = markov_db(3, 1, (3_000, 3_000), 30, 0.8);
    let t = db.sequences()[0].clone();
    let s = Sequence::new(t.symbols()[..3].to_vec());
    let sh = SensitiveSet::new(vec![s]);
    let d = delta_all::<Sat64>(&sh, &t);
    assert_eq!(d.len(), 3_000);
    // every embedding uses exactly 3 positions
    let total: u128 = d.iter().map(|x| x.get() as u128).sum();
    let count = seqhide::matching::matching_size::<Sat64>(&sh, &t).get() as u128;
    assert_eq!(total, count * 3);
}

#[test]
fn mining_large_zipf_database() {
    let db = zipf_db(9, 3_000, (5, 12), 60, 1.2);
    let result = PrefixSpan::mine(&db, &MinerConfig::new(300));
    assert!(!result.truncated);
    assert!(!result.is_empty());
    for fp in &result.patterns {
        assert!(fp.support >= 300);
    }
}

#[test]
fn deep_recursion_safety_in_prefixspan() {
    // 400 identical moderately long sequences: the DFS recurses to the
    // pattern-length limit of the longest common subsequence
    let row = "s0 ".repeat(200);
    let text = format!("{row}\n").repeat(400);
    let db = seqhide::types::SequenceDb::parse(&text);
    let result = PrefixSpan::mine(&db, &MinerConfig::new(400).with_max_len(150));
    assert_eq!(result.len(), 150); // ⟨s0⟩, ⟨s0 s0⟩, …
}

#[test]
fn wide_alphabet_hide() {
    let mut db = random_db(4, 1_000, (10, 20), 5_000);
    let mut sigma = db.alphabet().clone();
    let s = Sequence::parse("s1 s2", &mut sigma);
    let sh = SensitiveSet::new(vec![s.clone()]);
    let report = Sanitizer::hh(0).run(&mut db, &sh);
    assert!(report.hidden);
    assert_eq!(support(&db, &s), 0);
}
