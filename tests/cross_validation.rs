//! Cross-validation on the full calibrated datasets: independent
//! implementations must agree with each other at realistic scale, not just
//! on proptest-sized inputs.

use seqhide::data::{synthetic_like, trucks_like};
use seqhide::matching::{count_embeddings, SensitiveSet};
use seqhide::mine::{Gsp, MinerConfig, PrefixSpan};
use seqhide::prelude::*;
use seqhide::re::{count_occurrences, sanitize_regex_db, ReLocalStrategy, RegexPattern};

#[test]
fn miners_agree_on_both_datasets() {
    for dataset in [trucks_like(42), synthetic_like(42)] {
        let sigma = dataset.db.len() / 4; // deep enough to exercise level ≥ 3
        let cfg = MinerConfig::new(sigma);
        let ps = PrefixSpan::mine(&dataset.db, &cfg);
        let gsp = Gsp::mine(&dataset.db, &cfg);
        assert!(!ps.truncated && !gsp.truncated);
        assert_eq!(ps.sorted(), gsp.sorted(), "{} σ={sigma}", dataset.name);
        assert!(!ps.is_empty());
    }
}

#[test]
fn regex_equals_plain_patterns_on_trucks() {
    // the disjunction regex must cost exactly what the two expanded plain
    // patterns cost under the same strategies and seed
    let dataset = trucks_like(42);
    let mut db_re = dataset.db.clone();
    let re = RegexPattern::compile("X6Y3 X7Y2 | X4Y3 X5Y3", db_re.alphabet_mut()).unwrap();
    let re_report = sanitize_regex_db(
        &mut db_re,
        std::slice::from_ref(&re),
        0,
        ReLocalStrategy::Heuristic,
        0,
    );

    let mut db_plain = dataset.db.clone();
    let plain = Sanitizer::hh(0).run(&mut db_plain, &dataset.sensitive);

    assert!(re_report.hidden && plain.hidden);
    assert_eq!(re_report.marks_introduced, plain.marks_introduced);
    assert_eq!(re_report.sequences_sanitized, plain.sequences_sanitized);
    // the marked databases are literally identical
    assert_eq!(db_re.to_text(), db_plain.to_text());
}

#[test]
fn regex_counts_equal_plain_counts_on_every_trucks_sequence() {
    let dataset = trucks_like(42);
    let mut sigma = dataset.db.alphabet().clone();
    let re = RegexPattern::compile("X6Y3 X7Y2", &mut sigma).unwrap();
    let s = Sequence::parse("X6Y3 X7Y2", &mut sigma);
    for t in dataset.db.sequences() {
        assert_eq!(
            count_occurrences::<u64>(&re, t),
            count_embeddings::<u64>(&s, t)
        );
    }
}

#[test]
fn exact_and_saturating_sanitization_identical_on_datasets() {
    for dataset in [trucks_like(42), synthetic_like(42)] {
        let mut fast = dataset.db.clone();
        let mut exact = dataset.db.clone();
        let r1 = Sanitizer::hh(0).run(&mut fast, &dataset.sensitive);
        let r2 = Sanitizer::hh(0)
            .with_exact_counts(true)
            .run(&mut exact, &dataset.sensitive);
        assert_eq!(r1, r2, "{}", dataset.name);
        assert_eq!(fast.to_text(), exact.to_text(), "{}", dataset.name);
    }
}

#[test]
fn mining_released_trucks_contains_no_sensitive_pattern() {
    let dataset = trucks_like(42);
    let mut db = dataset.db.clone();
    Sanitizer::hh(0).run(&mut db, &dataset.sensitive);
    let mined = PrefixSpan::mine(&db, &MinerConfig::new(5));
    assert!(!mined.truncated);
    let sensitive: Vec<&Sequence> = dataset.sensitive.iter().map(|p| p.seq()).collect();
    for fp in &mined.patterns {
        assert!(!sensitive.contains(&&fp.seq), "leaked {:?}", fp.seq);
        // stronger: no mined pattern *contains* a sensitive pattern either
        for s in &sensitive {
            assert!(
                !seqhide::matching::is_subsequence(s, &fp.seq),
                "mined superpattern {:?} would reveal {:?}",
                fp.seq,
                s
            );
        }
    }
}

#[test]
fn constrained_supporters_are_subsets_of_unconstrained() {
    use seqhide::matching::{supporters, ConstraintSet, Gap};
    let dataset = trucks_like(42);
    let base = supporters(&dataset.db, &dataset.sensitive);
    for cs in [
        ConstraintSet::uniform_gap(Gap::bounded(0, 3)),
        ConstraintSet::with_max_window(4),
        ConstraintSet::uniform_gap(Gap { min: 1, max: None }),
    ] {
        let constrained = dataset.sensitive.with_constraints(&cs).unwrap();
        let sub = supporters(&dataset.db, &constrained);
        assert!(sub.iter().all(|i| base.contains(i)), "{cs:?}");
        assert!(sub.len() <= base.len());
    }
}

#[test]
fn sensitive_set_disjunction_identity_holds() {
    // |supp(S1)| + |supp(S2)| − |both| = |disjunction| on both datasets
    for dataset in [trucks_like(42), synthetic_like(42)] {
        let s1 = SensitiveSet::from_patterns(vec![dataset.sensitive.patterns()[0].clone()]);
        let s2 = SensitiveSet::from_patterns(vec![dataset.sensitive.patterns()[1].clone()]);
        let a = seqhide::matching::supporters(&dataset.db, &s1);
        let b = seqhide::matching::supporters(&dataset.db, &s2);
        let both = a.iter().filter(|i| b.contains(i)).count();
        let (_, disj) = dataset.support_table();
        assert_eq!(a.len() + b.len() - both, disj, "{}", dataset.name);
    }
}
