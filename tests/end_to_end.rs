//! Cross-crate end-to-end tests: the full pipeline on the calibrated
//! paper datasets — generate → sanitize → verify → measure → release.

use seqhide::core::metrics::{distortion_with, m1};
use seqhide::core::post::{delete_markers, delete_markers_safe, replace_markers};
use seqhide::core::{verify_hidden, DisclosureThresholds, Sanitizer};
use seqhide::data::{synthetic_like, trucks_like};
use seqhide::matching::support_of_pattern;
use seqhide::mine::{Gsp, MinerConfig, PrefixSpan};
use seqhide::prelude::*;

#[test]
fn full_pipeline_trucks() {
    let dataset = trucks_like(42);
    let (per, disj) = dataset.support_table();
    assert_eq!((per, disj), (vec![36, 38], 66));

    let mut db = dataset.db.clone();
    let report = Sanitizer::hh(10).run(&mut db, &dataset.sensitive);
    assert!(report.hidden);
    assert_eq!(report.supporters_before, 66);
    assert_eq!(report.sequences_sanitized, 56);
    for p in &dataset.sensitive {
        assert!(support_of_pattern(&db, p) <= 10);
    }
    assert_eq!(m1(&db), report.marks_introduced);

    // distortion is sane at σ = 10 with both miners agreeing
    let d = distortion_with(&dataset.db, &db, &MinerConfig::new(10));
    assert!(d.m2 >= 0.0 && d.m2 <= 1.0);
    assert!(d.m3 >= 0.0 && d.m3 <= 1.0);
    assert!(d.frequent_after <= d.frequent_before);
    let ps = PrefixSpan::mine(&db, &MinerConfig::new(10)).sorted();
    let gsp = Gsp::mine(&db, &MinerConfig::new(10)).sorted();
    assert_eq!(ps, gsp);
}

#[test]
fn full_pipeline_synthetic_all_algorithms() {
    let dataset = synthetic_like(42);
    for psi in [0usize, 50, 150] {
        for make in [Sanitizer::hh, Sanitizer::hr, Sanitizer::rh, Sanitizer::rr] {
            let mut db = dataset.db.clone();
            let report = make(psi).with_seed(3).run(&mut db, &dataset.sensitive);
            assert!(report.hidden, "psi={psi}");
            assert!(verify_hidden(&db, &dataset.sensitive, psi).hidden);
            // no sequence outside the supporters was touched
            for (orig, got) in dataset.db.sequences().iter().zip(db.sequences()) {
                if dataset
                    .sensitive
                    .iter()
                    .all(|p| !seqhide::matching::supports(orig, p))
                {
                    assert_eq!(orig, got);
                }
            }
        }
    }
}

#[test]
fn marking_never_increases_any_support() {
    // Requirement 2's driver: marking is purely subtractive, so *every*
    // pattern's support is ≤ its original value — checked via both miners'
    // full frequent sets.
    let dataset = synthetic_like(42);
    let mut db = dataset.db.clone();
    Sanitizer::hh(50).run(&mut db, &dataset.sensitive);
    let sigma = 30;
    let before = PrefixSpan::mine(&dataset.db, &MinerConfig::new(sigma)).to_map();
    let after = PrefixSpan::mine(&db, &MinerConfig::new(sigma));
    for fp in &after.patterns {
        let b = before
            .get(&fp.seq)
            .expect("marking cannot create frequent patterns");
        assert!(fp.support <= *b);
    }
}

#[test]
fn hh_beats_rr_on_both_datasets() {
    for dataset in [trucks_like(42), synthetic_like(42)] {
        let psi = 0;
        let mut hh_db = dataset.db.clone();
        let hh = Sanitizer::hh(psi).run(&mut hh_db, &dataset.sensitive);
        let mut rr_total = 0usize;
        for seed in 0..5 {
            let mut db = dataset.db.clone();
            rr_total += Sanitizer::rr(psi)
                .with_seed(seed)
                .run(&mut db, &dataset.sensitive)
                .marks_introduced;
        }
        let rr_avg = rr_total as f64 / 5.0;
        assert!(
            (hh.marks_introduced as f64) <= rr_avg,
            "{}: HH {} vs RR {:.1}",
            dataset.name,
            hh.marks_introduced,
            rr_avg
        );
    }
}

#[test]
fn release_paths_stay_hidden() {
    let dataset = synthetic_like(42);
    let psi = 20;
    let mut db = dataset.db.clone();
    Sanitizer::hh(psi).run(&mut db, &dataset.sensitive);

    // keep-Δ
    assert!(verify_hidden(&db, &dataset.sensitive, psi).hidden);

    // delete-Δ (unconstrained patterns: plain delete is already safe)
    let deleted = delete_markers(&db);
    assert_eq!(deleted.total_marks(), 0);
    assert!(verify_hidden(&deleted, &dataset.sensitive, psi).hidden);
    let (safe, report) = delete_markers_safe(&db, &dataset.sensitive, psi, &Sanitizer::hh(psi));
    assert_eq!(report.rounds, 1);
    assert_eq!(safe.to_text(), deleted.to_text());

    // replace-Δ
    let mut replaced = db.clone();
    let rep = replace_markers(&mut replaced, &dataset.sensitive, 5);
    assert!(rep.replaced > 0);
    assert!(verify_hidden(&replaced, &dataset.sensitive, psi).hidden);
}

#[test]
fn multi_threshold_on_real_data() {
    let dataset = synthetic_like(42);
    // hide pattern 0 hard (ψ=5) and pattern 1 lightly (ψ=150)
    let thresholds = DisclosureThresholds::new(vec![5, 150]);
    let mut db_sched = dataset.db.clone();
    let sched = Sanitizer::hh(0).run_multi(&mut db_sched, &dataset.sensitive, &thresholds);
    assert!(sched.hidden);
    assert!(sched.residual_supports[0] <= 5);
    assert!(sched.residual_supports[1] <= 150);

    let mut db_min = dataset.db.clone();
    let min = Sanitizer::hh(0).run_multi_min(&mut db_min, &dataset.sensitive, &thresholds);
    assert!(min.hidden);
    // the scheduler exploits the loose threshold and distorts far less
    assert!(sched.marks_introduced < min.marks_introduced);
}

#[test]
fn dataset_roundtrips_through_io() {
    let dataset = trucks_like(42);
    let dir = std::env::temp_dir().join("seqhide-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trucks.seq");
    seqhide::data::io::write_db(&path, &dataset.db).unwrap();
    let back = seqhide::data::io::read_db(&path).unwrap();
    assert_eq!(back.len(), 273);
    // supports survive the round trip (alphabet re-interned by name)
    let mut sigma = back.alphabet().clone();
    let s1 = Sequence::parse("X6Y3 X7Y2", &mut sigma);
    assert_eq!(support(&back, &s1), 36);
    std::fs::remove_file(path).unwrap();
}
