//! CLI robustness: `seqhide::cli::run` is total — arbitrary argument
//! vectors produce `Ok` or `Err`, never a panic, and never touch the
//! filesystem outside the paths given.

use proptest::prelude::*;
use seqhide::cli::run;

fn token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("--db".to_string()),
        Just("--psi".to_string()),
        Just("--pattern".to_string()),
        Just("--sigma".to_string()),
        Just("--mode".to_string()),
        Just("--regex".to_string()),
        Just("--seed".to_string()),
        Just("--out".to_string()),
        Just("stats".to_string()),
        Just("mine".to_string()),
        Just("hide".to_string()),
        Just("verify".to_string()),
        Just("attack".to_string()),
        Just("gen".to_string()),
        Just("/nonexistent/seqhide-fuzz".to_string()),
        Just("0".to_string()),
        Just("abc".to_string()),
        "[a-z(). |*+?-]{0,12}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cli_never_panics(args in prop::collection::vec(token(), 0..8)) {
        let _ = run(&args);
    }

    /// Commands over a real database file never panic either, whatever the
    /// flag soup around them.
    #[test]
    fn cli_never_panics_with_real_db(
        command in prop::sample::select(vec!["stats", "mine", "hide", "verify"]),
        extra in prop::collection::vec(token(), 0..6),
    ) {
        let dir = std::env::temp_dir().join("seqhide-cli-fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.seq");
        std::fs::write(&path, "a b c\nb c\n").unwrap();
        let mut args = vec![command.to_string(), "--db".into(), path.to_string_lossy().into_owned()];
        args.extend(extra);
        let _ = run(&args);
    }
}
