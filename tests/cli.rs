//! Integration tests for the `seqhide` CLI (driving `seqhide::cli::run`
//! directly — the binary is a 10-line wrapper).

use std::fs;
use std::path::PathBuf;

use seqhide::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("seqhide-cli-tests").join(name);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_db(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_and_unknown_command() {
    assert!(run(&[]).unwrap().contains("USAGE"));
    assert!(run(&args(&["help"])).unwrap().contains("seqhide hide"));
    let e = run(&args(&["frobnicate"])).unwrap_err();
    assert!(e.0.contains("unknown command"));
    // nothing is close to "frobnicate": no suggestion, just the pointer
    assert!(!e.0.contains("did you mean"), "{e}");
    assert!(e.0.contains("try 'seqhide help'"), "{e}");
}

#[test]
fn unknown_command_gets_suggestion() {
    // close typo
    let e = run(&args(&["hidee"])).unwrap_err();
    assert!(e.0.contains("did you mean 'hide'?"), "{e}");
    // prefix of a longer command
    let e = run(&args(&["ver"])).unwrap_err();
    assert!(e.0.contains("did you mean 'verify'?"), "{e}");
    // transposition
    let e = run(&args(&["sttas"])).unwrap_err();
    assert!(e.0.contains("did you mean 'stats'?"), "{e}");
}

#[test]
fn stats_reports_shape() {
    let dir = tmpdir("stats");
    let db = write_db(&dir, "db.seq", "a b c\nb c\n# comment\n");
    let out = run(&args(&["stats", "--db", &db])).unwrap();
    assert!(out.contains("sequences:      2"));
    assert!(out.contains("alphabet |Σ|:   3"));
    assert!(out.contains("avg length:     2.50"));
}

#[test]
fn mine_lists_frequent_patterns() {
    let dir = tmpdir("mine");
    let db = write_db(&dir, "db.seq", "a b\na b\nb a\n");
    let out = run(&args(&["mine", "--db", &db, "--sigma", "2"])).unwrap();
    assert!(out.contains("frequent patterns (σ = 2): 3"));
    assert!(out.contains("⟨a b⟩"));
    // gsp agrees
    let gsp = run(&args(&[
        "mine", "--db", &db, "--sigma", "2", "--miner", "gsp",
    ]))
    .unwrap();
    assert!(gsp.contains("frequent patterns (σ = 2): 3"));
    // top-k limits rows
    let top = run(&args(&["mine", "--db", &db, "--sigma", "2", "--top", "1"])).unwrap();
    assert_eq!(top.lines().count(), 2);
}

#[test]
fn hide_then_verify_roundtrip() {
    let dir = tmpdir("hide");
    let db = write_db(&dir, "db.seq", "a b c\nb a c\nc c a\na c\n");
    let out_path = dir.join("released.seq").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("total marks (M1):"));
    assert!(out.contains("wrote"));
    // verify passes on the release
    let v = run(&args(&[
        "verify",
        "--db",
        &out_path,
        "--psi",
        "0",
        "--pattern",
        "a c",
    ]))
    .unwrap();
    assert!(v.contains("HIDDEN"));
    // and fails on the original
    let e = run(&args(&[
        "verify",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
    ]))
    .unwrap_err();
    assert!(e.0.contains("NOT HIDDEN"));
}

#[test]
fn hide_with_constraints_and_post_delete() {
    let dir = tmpdir("hidec");
    let db = write_db(&dir, "db.seq", "a x b\na b\na y y b\n");
    let out_path = dir.join("released.seq").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a b",
        "--max-gap",
        "1",
        "--post",
        "delete",
        "--out",
        &out_path,
        "--report",
    ]))
    .unwrap();
    assert!(out.contains("post: deleted Δ"));
    assert!(out.contains("0 residual Δ"));
    let released = fs::read_to_string(&out_path).unwrap();
    assert!(!released.contains('Δ'));
}

#[test]
fn hide_regex_patterns() {
    let dir = tmpdir("hidere");
    let db = write_db(&dir, "db.seq", "a b\na c\na b c\nx y\n");
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--regex",
        "a (b | c)",
    ]))
    .unwrap();
    assert!(out.contains("regex patterns:"));
    assert!(out.contains("residual supports [0]"));
}

#[test]
fn hide_rejects_empty_and_bad_input() {
    let dir = tmpdir("hidebad");
    let db = write_db(&dir, "db.seq", "a b\n");
    assert!(run(&args(&["hide", "--db", &db, "--psi", "0"]))
        .unwrap_err()
        .0
        .contains("nothing to hide"));
    assert!(run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "zero",
        "--pattern",
        "a"
    ]))
    .unwrap_err()
    .0
    .contains("not a number"));
    assert!(
        run(&args(&["hide", "--db", &db, "--psi", "0", "--regex", "a*"]))
            .unwrap_err()
            .0
            .contains("empty word")
    );
    assert!(run(&args(&[
        "hide",
        "--db",
        "/nonexistent",
        "--psi",
        "0",
        "--pattern",
        "a"
    ]))
    .unwrap_err()
    .0
    .contains("cannot read"));
    assert!(run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--algorithm",
        "zz"
    ]))
    .unwrap_err()
    .0
    .contains("unknown algorithm"));
}

#[test]
fn engine_flag_selects_counting_core() {
    let dir = tmpdir("engine");
    let db = write_db(&dir, "db.seq", "a b c\nb a c\nc c a\na c\na b a b\n");
    let run_with = |engine: Option<&str>, algorithm: &str, out: &str| {
        let out_path = dir.join(out).to_string_lossy().into_owned();
        let mut a = args(&[
            "hide",
            "--db",
            &db,
            "--psi",
            "0",
            "--pattern",
            "a c",
            "--pattern",
            "a b",
            "--algorithm",
            algorithm,
            "--seed",
            "3",
            "--out",
            &out_path,
        ]);
        if let Some(e) = engine {
            a.extend(args(&["--engine", e]));
        }
        run(&a).unwrap();
        fs::read_to_string(dir.join(out)).unwrap()
    };
    for algorithm in ["hh", "rr"] {
        // the incremental engine (default) and the from-scratch escape
        // hatch release byte-identical databases
        let default = run_with(None, algorithm, "default.seq");
        let incremental = run_with(Some("incremental"), algorithm, "incremental.seq");
        let scratch = run_with(Some("scratch"), algorithm, "scratch.seq");
        assert_eq!(default, incremental, "{algorithm}");
        assert_eq!(default, scratch, "{algorithm}");
    }
    // bad value rejected
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--engine",
        "warp",
    ]))
    .unwrap_err();
    assert!(e.0.contains("unknown engine"));
}

#[test]
fn gen_produces_calibrated_dataset() {
    let dir = tmpdir("gen");
    let out_path = dir.join("synthetic.seq").to_string_lossy().into_owned();
    let out = run(&args(&[
        "gen",
        "--dataset",
        "synthetic",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("300 sequences"));
    assert!(out.contains("[99, 172], disjunction 200"));
    let stats = run(&args(&["stats", "--db", &out_path])).unwrap();
    assert!(stats.contains("sequences:      300"));
}

#[test]
fn deterministic_hide_under_seed() {
    let dir = tmpdir("det");
    let db = write_db(&dir, "db.seq", "a b\na b\na b\nb a\n");
    let run_once = |seed: &str, out: &str| {
        let out_path = dir.join(out).to_string_lossy().into_owned();
        run(&args(&[
            "hide",
            "--db",
            &db,
            "--psi",
            "1",
            "--pattern",
            "a b",
            "--algorithm",
            "rr",
            "--seed",
            seed,
            "--out",
            &out_path,
        ]))
        .unwrap();
        fs::read_to_string(dir.join(out)).unwrap()
    };
    assert_eq!(run_once("7", "a.seq"), run_once("7", "b.seq"));
}

#[test]
fn itemset_mode_hide_and_stats() {
    let dir = tmpdir("itemset");
    let db = write_db(
        &dir,
        "baskets.db",
        "test,bread vitamins,milk\nbread milk\ntest vitamins\n",
    );
    let stats = run(&args(&["stats", "--db", &db, "--mode", "itemset"])).unwrap();
    assert!(stats.contains("sequences:      3"));
    assert!(stats.contains("elements total: 6"));
    let out_path = dir.join("released.db").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--mode",
        "itemset",
        "--psi",
        "0",
        "--pattern",
        "test vitamins",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("residual supports [0]"));
    let released = fs::read_to_string(&out_path).unwrap();
    assert!(released.contains("Δ"));
    // non-sensitive items survive
    assert!(released.contains("bread"));
    // mine the released itemset db
    let mined = run(&args(&[
        "mine",
        "--db",
        &out_path,
        "--mode",
        "itemset",
        "--sigma",
        "2",
        "--max-len",
        "2",
    ]))
    .unwrap();
    assert!(mined.contains("frequent itemset patterns"));
}

#[test]
fn timed_mode_hide_respects_tick_constraints() {
    let dir = tmpdir("timed");
    let db = write_db(
        &dir,
        "events.db",
        "test@0 arv@24\ntest@0 arv@200\ntest@5 xray@40 arv@60\n",
    );
    let stats = run(&args(&["stats", "--db", &db, "--mode", "timed"])).unwrap();
    assert!(stats.contains("sequences:      3"));
    let out_path = dir.join("released.db").to_string_lossy().into_owned();
    // only occurrences within 72 ticks are sensitive: rows 1 and 3
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--mode",
        "timed",
        "--psi",
        "0",
        "--pattern",
        "test arv",
        "--max-gap",
        "72",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("residual supports [0]"));
    let released = fs::read_to_string(&out_path).unwrap();
    // row 2 (200-tick interval) untouched
    assert!(released.contains("test@0 arv@200"));
    assert!(released.contains("Δ@"));
}

#[test]
fn bad_modes_are_rejected() {
    let dir = tmpdir("badmode");
    let db = write_db(&dir, "db.seq", "a b\n");
    assert!(run(&args(&["stats", "--db", &db, "--mode", "weird"]))
        .unwrap_err()
        .0
        .contains("unknown mode"));
    assert!(run(&args(&[
        "mine", "--db", &db, "--mode", "timed", "--sigma", "1"
    ]))
    .unwrap_err()
    .0
    .contains("not supported"));
}

#[test]
fn attack_command_reports_inference_and_resupport() {
    let dir = tmpdir("attack");
    let original_text = "a b c\n".repeat(10) + "x y\n";
    let original = write_db(&dir, "orig.seq", &original_text);
    // hide ⟨a c⟩ completely, keep marks
    let released_path = dir.join("rel.seq").to_string_lossy().into_owned();
    run(&args(&[
        "hide",
        "--db",
        &original,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--out",
        &released_path,
    ]))
    .unwrap();
    // public background corpus with the same structure
    let public = write_db(&dir, "public.seq", &"a b c\n".repeat(30));
    let out = run(&args(&[
        "attack",
        "--original",
        &original,
        "--released",
        &released_path,
        "--train",
        &public,
        "--pattern",
        "a c",
    ]))
    .unwrap();
    assert!(out.contains("mark-inference:"), "{out}");
    assert!(
        out.contains("pattern re-support: original 10 → release 0 →"),
        "{out}"
    );
    assert!(out.contains("WARNING"), "{out}");
    // misaligned databases error out
    let short = write_db(&dir, "short.seq", "a b\n");
    assert!(run(&args(&[
        "attack",
        "--original",
        &original,
        "--released",
        &short
    ]))
    .unwrap_err()
    .0
    .contains("do not align"));
}

#[test]
fn unknown_flags_get_suggestions() {
    let dir = tmpdir("flags");
    let db = write_db(&dir, "db.seq", "a b\n");
    // close typo → "did you mean"
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psii",
        "0",
        "--pattern",
        "a",
    ]))
    .unwrap_err();
    assert!(
        e.0.contains("unknown flag --psii for 'hide'") && e.0.contains("did you mean --psi?"),
        "{e}"
    );
    // prefix of a longer flag is still suggested
    let e = run(&args(&["mine", "--db", &db, "--sig", "1"])).unwrap_err();
    assert!(e.0.contains("did you mean --sigma?"), "{e}");
    // nothing close → list the valid flags
    let e = run(&args(&["gen", "--frobnicate", "x"])).unwrap_err();
    assert!(e.0.contains("valid flags: --dataset, --seed, --out"), "{e}");
    // flags valid elsewhere are rejected per-subcommand
    let e = run(&args(&["stats", "--db", &db, "--psi", "0"])).unwrap_err();
    assert!(e.0.contains("unknown flag --psi for 'stats'"), "{e}");
}

#[test]
fn metrics_out_writes_documented_schema() {
    let dir = tmpdir("metrics");
    let db = write_db(&dir, "db.seq", "a b c\nb a c\nc c a\na c\n");
    let metrics_path = dir.join("metrics.json").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--metrics-out",
        &metrics_path,
    ]))
    .unwrap();
    assert!(out.contains("wrote metrics to"), "{out}");
    let json = fs::read_to_string(&metrics_path).unwrap();
    for key in [
        "\"schema_version\": 4",
        "\"obs_enabled\"",
        "\"phases\"",
        "\"counters\"",
        "\"gauges\"",
        "\"peak_resident_batch\"",
        "\"histograms\"",
        "\"marks_introduced\"",
        "\"victims_processed\"",
        "\"victim_marks\"",
        "\"victim_nanos\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    if seqhide_obs::is_enabled() {
        // the run visited the sanitize tree: phases are non-empty and the
        // local phase points at its parent
        assert!(json.contains("\"name\": \"sanitize\""), "{json}");
        assert!(
            json.contains("\"name\": \"local_sanitize\", \"parent\": \"sanitize\""),
            "{json}"
        );
        assert!(json.contains("\"name\": \"verify\""), "{json}");
    }
    // mine writes the same schema
    let mine_metrics = dir.join("mine.json").to_string_lossy().into_owned();
    run(&args(&[
        "mine",
        "--db",
        &db,
        "--sigma",
        "2",
        "--metrics-out",
        &mine_metrics,
    ]))
    .unwrap();
    let json = fs::read_to_string(&mine_metrics).unwrap();
    assert!(json.contains("\"patterns_checked\""), "{json}");
    if seqhide_obs::is_enabled() {
        assert!(json.contains("\"name\": \"mine\""), "{json}");
    }
}

/// `--metrics-out` must not silently drop the run's telemetry when the
/// command fails: the snapshot is still written, with an `"error"` field
/// carrying the message, and the failure still propagates.
#[test]
fn metrics_out_written_on_command_error() {
    let dir = tmpdir("metricserr");
    let db = write_db(&dir, "db.seq", "a b c\na c\n");
    let metrics_path = dir.join("failed.json").to_string_lossy().into_owned();
    // verify fails (the pattern is NOT hidden in the original db)
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--post",
        "nonsense",
        "--metrics-out",
        &metrics_path,
    ]))
    .unwrap_err();
    assert!(e.0.contains("unknown post strategy"), "{e}");
    let json = fs::read_to_string(&metrics_path).unwrap();
    assert!(json.contains("\"schema_version\": 4"), "{json}");
    assert!(
        json.contains("\"error\": \"unknown post strategy 'nonsense'"),
        "{json}"
    );
    if seqhide_obs::is_enabled() {
        // the sanitize work done before the failure is still accounted
        assert!(json.contains("\"name\": \"sanitize\""), "{json}");
    }
    // a successful run never carries the key
    let ok_path = dir.join("ok.json").to_string_lossy().into_owned();
    run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--metrics-out",
        &ok_path,
    ]))
    .unwrap();
    assert!(!fs::read_to_string(&ok_path).unwrap().contains("\"error\""));
}

#[test]
fn progress_flag_is_accepted_and_scoped() {
    let dir = tmpdir("progress");
    let db = write_db(&dir, "db.seq", "a b\na b\nb a\n");
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a b",
        "--progress",
    ]))
    .unwrap();
    assert!(out.contains("total marks (M1):"));
    // progress is disabled again once the command returns
    assert!(!seqhide_obs::progress::enabled());
    // verify does not take --progress
    let e = run(&args(&[
        "verify",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a b",
        "--progress",
    ]))
    .unwrap_err();
    assert!(e.0.contains("unknown flag --progress for 'verify'"), "{e}");
}

#[test]
fn stream_flag_releases_identical_bytes() {
    let dir = tmpdir("stream");
    let db = write_db(
        &dir,
        "db.seq",
        "a b c\nb a c\nc a b c\na c\nb b\nc a\na b a c\n",
    );
    for algorithm in ["hh", "rr"] {
        for batch in ["1", "3", "100"] {
            let mem_path = dir.join("mem.seq").to_string_lossy().into_owned();
            let stream_path = dir.join("stream.seq").to_string_lossy().into_owned();
            let common = [
                "--db",
                &db,
                "--psi",
                "1",
                "--pattern",
                "a c",
                "--algorithm",
                algorithm,
                "--seed",
                "9",
                "--threads",
                "2",
            ];
            let mut mem_args = args(&["hide"]);
            mem_args.extend(args(&common));
            mem_args.extend(args(&["--out", &mem_path]));
            run(&mem_args).unwrap();
            let mut stream_args = args(&["hide"]);
            stream_args.extend(args(&common));
            stream_args.extend(args(&[
                "--stream",
                "--batch-size",
                batch,
                "--out",
                &stream_path,
            ]));
            let out = run(&stream_args).unwrap();
            assert!(out.contains("stream:"), "{out}");
            assert!(out.contains("total marks (M1):"), "{out}");
            assert_eq!(
                fs::read_to_string(&mem_path).unwrap(),
                fs::read_to_string(&stream_path).unwrap(),
                "algorithm={algorithm} batch={batch}"
            );
        }
    }
    // without --out the release streams to stdout, same bytes
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--stream",
    ]))
    .unwrap();
    let mem = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
    ]))
    .unwrap();
    let tail = |s: &str| {
        s.lines()
            .filter(|l| !l.contains(':'))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(tail(&out), tail(&mem));
}

#[test]
fn stream_flag_rejects_unsupported_combos() {
    let dir = tmpdir("streambad");
    let db = write_db(&dir, "db.seq", "a b\n");
    // plain --pattern and --regex cannot stream together (one class per run)
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--regex",
        "a b",
        "--stream",
    ]))
    .unwrap_err();
    assert!(e.0.contains("one pattern class per run"), "{e}");
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--stream",
        "--post",
        "delete",
    ]))
    .unwrap_err();
    assert!(e.0.contains("--stream writes incrementally"), "{e}");
    // --regex only applies to plain-mode databases
    let e = run(&args(&[
        "hide", "--db", &db, "--mode", "itemset", "--psi", "0", "--regex", "a b", "--stream",
    ]))
    .unwrap_err();
    assert!(e.0.contains("plain mode only"), "{e}");
    let e = run(&args(&["hide", "--db", &db, "--psi", "0", "--stream"])).unwrap_err();
    assert!(e.0.contains("nothing to hide"), "{e}");
}

/// `--stream` now covers every pattern class: itemset and timed modes and
/// regex patterns must release byte-identical files to the in-memory path
/// on the same seed, across algorithms and batch sizes.
#[test]
fn stream_releases_identical_bytes_for_every_domain() {
    let dir = tmpdir("streamdomains");
    let idb = write_db(
        &dir,
        "baskets.db",
        "test,bread vitamins,milk\nbread milk\ntest vitamins\ntest,milk vitamins,bread\nmilk test\n",
    );
    let tdb = write_db(
        &dir,
        "events.db",
        "test@0 arv@24\ntest@0 arv@200\ntest@5 xray@40 arv@60\ntest@1 arv@30\narv@2 test@9\n",
    );
    let rdb = write_db(&dir, "plain.seq", "a b\na c\na b c\nx y\na c b\nb a c a\n");
    let cases: &[(&str, &[&str])] = &[
        (
            "itemset",
            &[
                "--db",
                &idb,
                "--mode",
                "itemset",
                "--pattern",
                "test vitamins",
            ],
        ),
        (
            "timed",
            &[
                "--db",
                &tdb,
                "--mode",
                "timed",
                "--pattern",
                "test arv",
                "--max-gap",
                "72",
            ],
        ),
        ("regex", &["--db", &rdb, "--regex", "a (b | c)"]),
    ];
    for (name, common) in cases {
        for algorithm in ["hh", "rr"] {
            for batch in ["1", "2", "100"] {
                let mem_path = dir.join("mem.out").to_string_lossy().into_owned();
                let stream_path = dir.join("stream.out").to_string_lossy().into_owned();
                let shared = [
                    "--psi",
                    "1",
                    "--algorithm",
                    algorithm,
                    "--seed",
                    "9",
                    "--threads",
                    "2",
                ];
                let mut mem_args = args(&["hide"]);
                mem_args.extend(args(common));
                mem_args.extend(args(&shared));
                mem_args.extend(args(&["--out", &mem_path]));
                run(&mem_args).unwrap_or_else(|e| panic!("{name} mem: {e}"));
                let mut stream_args = args(&["hide"]);
                stream_args.extend(args(common));
                stream_args.extend(args(&shared));
                stream_args.extend(args(&[
                    "--stream",
                    "--batch-size",
                    batch,
                    "--out",
                    &stream_path,
                ]));
                let out = run(&stream_args).unwrap_or_else(|e| panic!("{name} stream: {e}"));
                assert!(out.contains("stream:"), "{name}: {out}");
                assert!(out.contains(&format!("{name} patterns:")), "{name}: {out}");
                assert_eq!(
                    fs::read_to_string(&mem_path).unwrap(),
                    fs::read_to_string(&stream_path).unwrap(),
                    "domain={name} algorithm={algorithm} batch={batch}"
                );
            }
        }
    }
}

#[test]
fn stream_metrics_expose_pass_phases_and_peak_gauge() {
    let dir = tmpdir("streammetrics");
    let db = write_db(&dir, "db.seq", "a b c\nb a c\na c\na c b a\n");
    let metrics_path = dir.join("metrics.json").to_string_lossy().into_owned();
    run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--stream",
        "--batch-size",
        "2",
        "--metrics-out",
        &metrics_path,
    ]))
    .unwrap();
    let json = fs::read_to_string(&metrics_path).unwrap();
    assert!(json.contains("\"peak_resident_batch\""), "{json}");
    if seqhide_obs::is_enabled() {
        assert!(json.contains("\"name\": \"stream_pass1\""), "{json}");
        assert!(json.contains("\"name\": \"stream_pass2\""), "{json}");
        // 2 sequences × ≤ 4 symbols × 4 bytes each — nonzero, bounded
        assert!(!json.contains("\"peak_resident_batch\": 0"), "{json}");
    }
}

/// Regression: `--post delete` used to re-verify only plain `S_h`, so a
/// gap-constrained **regex** pattern destroyed in stage 1 could be
/// resurrected by Δ-deletion (deleting the mark glues its neighbours
/// together). The db ⟨a x b⟩ with regex "a b" at max-gap 0 is the minimal
/// case: hiding --pattern x marks the middle, deletion yields ⟨a b⟩ — a
/// fresh adjacent occurrence the old code shipped.
#[test]
fn post_delete_reverifies_regex_patterns() {
    let dir = tmpdir("deleteregex");
    let db = write_db(&dir, "db.seq", "a x b\n");
    let out_path = dir.join("released.seq").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "x",
        "--regex",
        "a b",
        "--max-gap",
        "0",
        "--post",
        "delete",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("post: deleted Δ"), "{out}");
    let released = fs::read_to_string(&out_path).unwrap();
    assert!(
        !released.contains('Δ'),
        "release must be mark-free: {released}"
    );
    // the adjacent occurrence must NOT have been resurrected
    for line in released.lines() {
        assert!(
            !line.contains("a b"),
            "regex pattern resurrected by deletion: {released}"
        );
    }
    // and the plain pattern stayed hidden too
    assert!(!released.contains('x'), "{released}");
}

#[test]
fn report_flag_surfaces_engine_stats() {
    let dir = tmpdir("repstats");
    let db = write_db(&dir, "db.seq", "a b c\nb a c\nc c a\na c\n");
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--report",
    ]))
    .unwrap();
    assert!(
        out.contains("cell repairs") && out.contains("fallback recounts"),
        "{out}"
    );
}

#[test]
fn version_flag_is_globally_recognized() {
    for invocation in [&["--version"][..], &["-V"], &["version"]] {
        let out = run(&args(invocation)).unwrap();
        assert_eq!(out, format!("seqhide {}\n", env!("CARGO_PKG_VERSION")));
    }
    // help mentions it
    assert!(run(&args(&["help"])).unwrap().contains("--version"));
}

#[test]
fn stream_batch_size_zero_is_a_pointed_error() {
    let dir = tmpdir("batchzero");
    let db = write_db(&dir, "db.seq", "a b c\na c\n");
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--psi",
        "0",
        "--pattern",
        "a c",
        "--stream",
        "--batch-size",
        "0",
    ]))
    .unwrap_err();
    assert!(e.0.contains("--batch-size must be ≥ 1"), "{e}");
}

/// Satellite of the DistortOp refactor: every Δ-mark-only domain must
/// reject `--op delete|substitute` with a pointed "did you mean" error,
/// while `--op mark` (the default, spelled out) passes everywhere and the
/// string domain accepts all three operator families.
#[test]
fn edit_ops_are_rejected_outside_the_string_domain() {
    let dir = tmpdir("opmatrix");
    let pdb = write_db(&dir, "plain.seq", "a b\nb a\n");
    let idb = write_db(&dir, "baskets.db", "a,b c\nc a\n");
    let tdb = write_db(&dir, "events.db", "a@0 b@5\nb@0 a@9\n");
    let mark_only: &[(&str, &[&str])] = &[
        ("plain patterns", &["--db", &pdb, "--pattern", "a b"]),
        (
            "itemset patterns",
            &["--db", &idb, "--mode", "itemset", "--pattern", "a b"],
        ),
        (
            "timed patterns",
            &["--db", &tdb, "--mode", "timed", "--pattern", "a b"],
        ),
        ("regex patterns", &["--db", &pdb, "--regex", "a b"]),
    ];
    for (noun, common) in mark_only {
        for op in ["delete", "substitute"] {
            let mut a = args(&["hide", "--psi", "0", "--op", op]);
            a.extend(args(common));
            let e = run(&a).unwrap_err();
            assert!(
                e.0.contains(noun) && e.0.contains("did you mean --domain string?"),
                "{noun} --op {op}: {e}"
            );
        }
        // spelling out the default is fine everywhere
        let mut a = args(&["hide", "--psi", "0", "--op", "mark"]);
        a.extend(args(common));
        let out = run(&a).unwrap_or_else(|e| panic!("{noun} --op mark: {e}"));
        assert!(out.contains(noun), "{noun}: {out}");
    }
    // the string domain accepts all three families
    for op in ["mark", "delete", "substitute"] {
        let out = run(&args(&[
            "hide",
            "--db",
            &pdb,
            "--domain",
            "string",
            "--psi",
            "0",
            "--pattern",
            "a b",
            "--op",
            op,
        ]))
        .unwrap_or_else(|e| panic!("string --op {op}: {e}"));
        assert!(out.contains("string patterns:"), "{out}");
    }
    // bad values and conflicting mode/domain pairs are pointed errors
    let e = run(&args(&[
        "hide",
        "--db",
        &pdb,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--op",
        "shred",
    ]))
    .unwrap_err();
    assert!(
        e.0.contains("unknown op 'shred' (mark|delete|substitute)"),
        "{e}"
    );
    let e = run(&args(&[
        "hide",
        "--db",
        &pdb,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--domain",
        "str",
    ]))
    .unwrap_err();
    assert!(
        e.0.contains("unknown domain 'str' (plain|itemset|timed|regex|string)"),
        "{e}"
    );
    let e = run(&args(&[
        "hide",
        "--db",
        &pdb,
        "--psi",
        "0",
        "--pattern",
        "a",
        "--domain",
        "string",
        "--mode",
        "itemset",
    ]))
    .unwrap_err();
    assert!(
        e.0.contains("--domain string reads plain-format input; drop --mode itemset"),
        "{e}"
    );
}

/// The substring domain's edit operators at the CLI surface: `--op delete`
/// and `--op substitute` release databases with **zero** Δ marks and zero
/// surviving sensitive occurrences, and `--stream` reproduces the
/// in-memory bytes exactly for every operator family.
#[test]
fn string_domain_edits_and_streams_identically() {
    let dir = tmpdir("stringdomain");
    let db = write_db(&dir, "db.seq", "a b c\na b d\nc a b\nb a\na b a b\n");
    for op in ["mark", "delete", "substitute"] {
        for algorithm in ["hh", "rr"] {
            let mem_path = dir.join("mem.seq").to_string_lossy().into_owned();
            let stream_path = dir.join("stream.seq").to_string_lossy().into_owned();
            let common = [
                "--db",
                &db,
                "--domain",
                "string",
                "--psi",
                "0",
                "--pattern",
                "a b",
                "--op",
                op,
                "--algorithm",
                algorithm,
                "--seed",
                "9",
                "--threads",
                "2",
            ];
            let mut mem_args = args(&["hide"]);
            mem_args.extend(args(&common));
            mem_args.extend(args(&["--out", &mem_path]));
            let out = run(&mem_args).unwrap_or_else(|e| panic!("{op}/{algorithm} mem: {e}"));
            assert!(out.contains("string patterns:"), "{out}");
            assert!(out.contains("residual supports [0]"), "{out}");
            let mut stream_args = args(&["hide"]);
            stream_args.extend(args(&common));
            stream_args.extend(args(&[
                "--stream",
                "--batch-size",
                "2",
                "--out",
                &stream_path,
            ]));
            run(&stream_args).unwrap_or_else(|e| panic!("{op}/{algorithm} stream: {e}"));
            let mem = fs::read_to_string(&mem_path).unwrap();
            assert_eq!(
                mem,
                fs::read_to_string(&stream_path).unwrap(),
                "op={op} algorithm={algorithm}"
            );
            // edit operators must leave neither marks nor occurrences
            if op != "mark" {
                assert!(!mem.contains('Δ'), "op={op}: {mem}");
                for line in mem.lines() {
                    assert!(!line.contains("a b"), "op={op} resurrected: {mem}");
                }
            }
        }
    }
    // untouched sequences survive byte-for-byte
    let out = run(&args(&[
        "hide",
        "--db",
        &db,
        "--domain",
        "string",
        "--psi",
        "0",
        "--pattern",
        "a b",
        "--op",
        "delete",
    ]))
    .unwrap();
    assert!(out.contains("b a\n"), "{out}");
    // string hides edit in place: the Δ post-stages don't apply
    let e = run(&args(&[
        "hide",
        "--db",
        &db,
        "--domain",
        "string",
        "--psi",
        "0",
        "--pattern",
        "a b",
        "--post",
        "delete",
    ]))
    .unwrap_err();
    assert!(
        e.0.contains("--domain string edits during sanitization"),
        "{e}"
    );
}

/// Regression for the generalized `--post delete`: constrained non-plain
/// domains used to skip re-verification entirely. The itemset case is the
/// resurrection trap — deleting a marked item empties its element, the
/// element is dropped, and the neighbours become adjacent, re-creating a
/// max-gap-0 occurrence the old code would have shipped. The timed case
/// proves the converse: deletion preserves surviving tick tags, so a
/// time-expressed gap can never resurrect and one round suffices.
#[test]
fn post_delete_reverifies_constrained_domains() {
    let dir = tmpdir("postdomains");
    // itemset: hide x collaterally, a…b glued adjacent by element dropping
    let idb = write_db(&dir, "baskets.db", "a x b\n");
    let out_path = dir.join("rel.db").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &idb,
        "--mode",
        "itemset",
        "--psi",
        "0",
        "--pattern",
        "x",
        "--pattern",
        "a b",
        "--max-gap",
        "0",
        "--post",
        "delete",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("post: deleted Δ"), "{out}");
    assert!(
        !out.contains("(1 round(s))"),
        "resurrection not caught: {out}"
    );
    let released = fs::read_to_string(&out_path).unwrap();
    assert!(!released.contains('Δ'), "{released}");
    assert!(!released.contains('x'), "{released}");
    for line in released.lines() {
        assert!(
            !line.contains("a b"),
            "itemset pattern resurrected: {released}"
        );
    }
    // timed: tick tags survive deletion, so one round converges
    let tdb = write_db(&dir, "events.db", "test@0 arv@24\ntest@0 arv@200\n");
    let out_path = dir.join("rel2.db").to_string_lossy().into_owned();
    let out = run(&args(&[
        "hide",
        "--db",
        &tdb,
        "--mode",
        "timed",
        "--psi",
        "0",
        "--pattern",
        "test arv",
        "--max-gap",
        "72",
        "--post",
        "delete",
        "--out",
        &out_path,
    ]))
    .unwrap();
    assert!(out.contains("post: deleted Δ (1 round(s))"), "{out}");
    let released = fs::read_to_string(&out_path).unwrap();
    assert!(!released.contains('Δ'), "{released}");
    // the wide-gap row is untouched
    assert!(released.contains("test@0 arv@200"), "{released}");
}

#[test]
fn serve_rejects_degenerate_pool_and_queue_sizes() {
    let e = run(&args(&["serve", "--addr", "127.0.0.1:0", "--threads", "0"])).unwrap_err();
    assert!(e.0.contains("--threads must be ≥ 1"), "{e}");
    let e = run(&args(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--queue-depth",
        "0",
    ]))
    .unwrap_err();
    assert!(e.0.contains("--queue-depth must be ≥ 1"), "{e}");
    // unknown serve flags get the usual "did you mean"
    let e = run(&args(&["serve", "--queue-dept", "4"])).unwrap_err();
    assert!(e.0.contains("did you mean --queue-depth?"), "{e}");
}
