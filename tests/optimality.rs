//! How close does the paper's greedy local heuristic get to the NP-hard
//! optimum? Theorem 1 reduces HITTING SET to single-sequence sanitization,
//! so exact optima are exponential — but computable for small instances,
//! giving a quality oracle for the heuristic.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use seqhide::core::local::sanitize_sequence;
use seqhide::core::LocalStrategy;
use seqhide::matching::{matching_size, SensitiveSet};
use seqhide::num::Count as _;
use seqhide::num::Sat64;
use seqhide::prelude::*;

/// Exact minimum number of marks that sanitize `t` against `sh`:
/// exhaustive search over position subsets in increasing size order.
fn optimal_marks(t: &Sequence, sh: &SensitiveSet) -> usize {
    let n = t.len();
    assert!(n <= 12, "exhaustive oracle only for small instances");
    if matching_size::<u64>(sh, t).is_zero() {
        return 0;
    }
    for size in 1..=n {
        // iterate subsets of exactly `size` positions
        let mut found = false;
        let mut subset: Vec<usize> = (0..size).collect();
        loop {
            let mut work = t.clone();
            for &i in &subset {
                work.mark(i);
            }
            if matching_size::<u64>(sh, &work).is_zero() {
                found = true;
                break;
            }
            // next k-combination
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if subset[i] != i + n - size {
                    subset[i] += 1;
                    for j in i + 1..size {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    subset.clear();
                    break;
                }
            }
            if subset.is_empty() {
                break;
            }
        }
        if found {
            return size;
        }
    }
    unreachable!("marking every position always sanitizes");
}

fn hh_marks(t: &Sequence, sh: &SensitiveSet) -> usize {
    let mut work = t.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    sanitize_sequence::<Sat64, _>(&mut work, sh, LocalStrategy::Heuristic, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn heuristic_never_beats_optimum_and_always_sanitizes(
        t in prop::collection::vec(0u32..4, 0..=9),
        pats in prop::collection::vec(prop::collection::vec(0u32..4, 1..=3), 1..=3),
    ) {
        let t = Sequence::from_ids(t);
        let sh = SensitiveSet::new(pats.into_iter().map(Sequence::from_ids).collect());
        let opt = optimal_marks(&t, &sh);
        let hh = hh_marks(&t, &sh);
        prop_assert!(hh >= opt, "heuristic {} below optimum {}?!", hh, opt);
        // greedy hitting-set style bound: ln-factor, generous for n ≤ 9
        prop_assert!(hh <= opt.max(1) * 4, "heuristic {} vs optimum {}", hh, opt);
    }
}

#[test]
fn heuristic_is_optimal_on_the_paper_example() {
    let mut sigma = seqhide::types::Alphabet::new();
    let s = Sequence::parse("a b c", &mut sigma);
    let t = Sequence::parse("a a b c c b a e", &mut sigma);
    let sh = SensitiveSet::new(vec![s]);
    assert_eq!(optimal_marks(&t, &sh), 1);
    assert_eq!(hh_marks(&t, &sh), 1);
}

#[test]
fn heuristic_is_optimal_on_hitting_set_reduction() {
    // the Theorem 1 instance from tests/paper_examples.rs: optimum 2
    let t = Sequence::from_ids(0..6);
    let pairs = [(1usize, 2usize), (2, 3), (2, 5), (4, 5), (5, 6)];
    let sh = SensitiveSet::new(
        pairs
            .iter()
            .map(|&(j, k)| Sequence::from_ids([j as u32 - 1, k as u32 - 1]))
            .collect(),
    );
    assert_eq!(optimal_marks(&t, &sh), 2);
    assert_eq!(hh_marks(&t, &sh), 2);
}

/// Greedy δ can be strictly suboptimal — expected for an NP-hard problem.
/// This pins a concrete witness so the gap is documented, not accidental:
/// the classic greedy-set-cover trap, expressed as patterns.
#[test]
fn heuristic_suboptimality_witness_exists() {
    // Search tiny instances for a case where hh > opt. The search space is
    // deterministic, so the witness (and the gap) is stable.
    let mut witness = None;
    'outer: for seed in 0..400u64 {
        use rand::Rng as _;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t: Sequence = Sequence::from_ids(
            (0..8)
                .map(|_| rng.random_range(0..3u32))
                .collect::<Vec<_>>(),
        );
        for plen in 2..=2usize {
            let pats: Vec<Sequence> = (0..3)
                .map(|_| {
                    Sequence::from_ids(
                        (0..plen)
                            .map(|_| rng.random_range(0..3u32))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let sh = SensitiveSet::new(pats);
            let opt = optimal_marks(&t, &sh);
            let hh = hh_marks(&t, &sh);
            if hh > opt {
                witness = Some((t.clone(), seed, opt, hh));
                break 'outer;
            }
        }
    }
    let (t, seed, opt, hh) = witness.expect("greedy should be beatable somewhere in 400 instances");
    assert!(
        hh > opt,
        "witness at seed {seed} on {t:?}: hh {hh} vs opt {opt}"
    );
}
