//! Integration tests for the sanitization service: server-vs-CLI release
//! parity under concurrent clients, backpressure on a full queue, and
//! graceful drain — including the `seqhide serve` subcommand end to end.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use seqhide::cli::run as cli;
use seqhide::serve::json::{self, Json};
use seqhide::serve::{ServeOptions, ServeSummary, Server};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("seqhide-serve-tests").join(name);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(workers: usize, queue_depth: usize) -> (SocketAddr, thread::JoinHandle<ServeSummary>) {
    start_with_dir(workers, queue_depth, None)
}

fn start_with_dir(
    workers: usize,
    queue_depth: usize,
    data_dir: Option<&std::path::Path>,
) -> (SocketAddr, thread::JoinHandle<ServeSummary>) {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        metrics_addr: None,
        data_dir: data_dir.map(|d| d.to_string_lossy().into_owned()),
        tenants: None,
    })
    .expect("bind");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run().expect("run")))
}

/// A multi-tenant server: parses `config` with the same parser
/// `--tenants FILE` uses, so these tests cover the full config path.
fn start_with_tenants(
    workers: usize,
    queue_depth: usize,
    config: &str,
) -> (SocketAddr, thread::JoinHandle<ServeSummary>) {
    let tenants = seqhide::serve::tenant::parse_tenants(config, "test.conf").expect("config");
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        metrics_addr: None,
        data_dir: None,
        tenants: Some(tenants),
    })
    .expect("bind");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run().expect("run")))
}

/// One request over a fresh connection; reads exactly one response line.
fn send_one(addr: SocketAddr, request: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    json::parse(line.trim_end()).expect("response is JSON")
}

fn obj(members: Vec<(&str, Json)>) -> String {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
    .render()
}

fn str_arr(items: &[&str]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.to_string())).collect())
}

/// One pattern class the parity sweep covers: the database text, the
/// patterns, and how the same run is spelled on the CLI.
struct ParityCase {
    name: &'static str,
    mode: &'static str,
    db: &'static str,
    patterns: &'static [&'static str],
    regexes: &'static [&'static str],
}

const CASES: &[ParityCase] = &[
    ParityCase {
        name: "plain",
        mode: "plain",
        db: "a b c\nb a c\nc c a\na c\na b a b\nc a b\n",
        patterns: &["a c", "a b"],
        regexes: &[],
    },
    ParityCase {
        name: "itemset",
        mode: "itemset",
        db:
            "bread,milk beer\nbeer bread\nbread,milk bread\nmilk beer,bread\nbread,milk beer,milk\n",
        patterns: &["bread,milk beer"],
        regexes: &[],
    },
    ParityCase {
        name: "timed",
        mode: "timed",
        db: "a@0 b@5 c@9\nb@0 a@3 c@7\na@1 c@4\nc@0 a@2 c@9\nb@2 a@6 b@8 c@11\n",
        patterns: &["a c"],
        regexes: &[],
    },
    ParityCase {
        name: "regex",
        mode: "plain",
        db: "a b\na c\na b c\nx y\na c b\nb a c\n",
        patterns: &[],
        regexes: &["a (b | c)"],
    },
];

fn sanitize_request(case: &ParityCase, algorithm: &str, seed: u64) -> String {
    sanitize_request_from(case, algorithm, seed, None)
}

/// The same sanitize request with the database either inline or as a
/// `dataset` reference.
fn sanitize_request_from(
    case: &ParityCase,
    algorithm: &str,
    seed: u64,
    dataset: Option<&str>,
) -> String {
    let db_field = match dataset {
        Some(name) => ("dataset", Json::Str(name.to_string())),
        None => ("db", Json::Str(case.db.to_string())),
    };
    let mut members = vec![
        ("type", Json::Str("sanitize".to_string())),
        db_field,
        ("mode", Json::Str(case.mode.to_string())),
        ("psi", Json::num(0)),
        ("algorithm", Json::Str(algorithm.to_string())),
        ("seed", Json::num(seed)),
    ];
    if !case.patterns.is_empty() {
        members.push(("patterns", str_arr(case.patterns)));
    }
    if !case.regexes.is_empty() {
        members.push(("regexes", str_arr(case.regexes)));
    }
    obj(members)
}

/// What `seqhide hide` writes to `--out` for the same run.
fn cli_release(dir: &std::path::Path, case: &ParityCase, algorithm: &str, seed: u64) -> String {
    let db_path = dir.join(format!("{}.db", case.name));
    fs::write(&db_path, case.db).unwrap();
    let out_path = dir.join(format!("{}-{algorithm}-{seed}.out", case.name));
    let seed = seed.to_string();
    let mut a = vec![
        "hide".to_string(),
        "--db".to_string(),
        db_path.to_string_lossy().into_owned(),
        "--psi".to_string(),
        "0".to_string(),
        "--algorithm".to_string(),
        algorithm.to_string(),
        "--seed".to_string(),
        seed,
        "--out".to_string(),
        out_path.to_string_lossy().into_owned(),
    ];
    if case.mode != "plain" {
        a.extend(args(&["--mode", case.mode]));
    }
    for p in case.patterns {
        a.extend(args(&["--pattern", p]));
    }
    for r in case.regexes {
        a.extend(args(&["--regex", r]));
    }
    cli(&a).unwrap();
    fs::read_to_string(&out_path).unwrap()
}

/// The tentpole guarantee: for every pattern class and every HH/HR/RH/RR
/// algorithm, a served release is **byte-identical** to the CLI's for
/// the same (input, algorithm, ψ, seed) — exercised by four clients
/// hammering one server concurrently, so worker scheduling is also shown
/// not to leak into results.
#[test]
fn served_releases_are_byte_identical_to_cli_across_domains_and_algorithms() {
    let dir = tmpdir("parity");
    let (addr, handle) = start(3, 32);
    let clients: Vec<_> = CASES
        .iter()
        .map(|case| {
            let dir = dir.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for algorithm in ["hh", "hr", "rh", "rr"] {
                    for seed in [0u64, 7] {
                        writeln!(stream, "{}", sanitize_request(case, algorithm, seed)).unwrap();
                        stream.flush().unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        let resp = json::parse(line.trim_end()).unwrap();
                        assert_eq!(
                            resp.get("status").and_then(Json::as_str),
                            Some("ok"),
                            "{}/{algorithm}/{seed}: {line}",
                            case.name
                        );
                        assert_eq!(resp.get("hidden").and_then(Json::as_bool), Some(true));
                        let served = resp.get("release").and_then(Json::as_str).unwrap();
                        let expected = cli_release(&dir, case, algorithm, seed);
                        assert_eq!(
                            served, expected,
                            "{}/{algorithm}/seed {seed}: served release diverges from CLI",
                            case.name
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    let resp = send_one(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let summary = handle.join().unwrap();
    assert_eq!(summary.executed, (CASES.len() * 4 * 2) as u64);
    assert_eq!(summary.overloads, 0);
}

/// The DistortOp wire field: `"mode":"string"` releases under each
/// operator family are byte-identical to the CLI's `--domain string
/// --op` runs on the same seed, and an edit op on a Δ-mark-only mode is
/// rejected with the pointed error, mirroring the CLI's.
#[test]
fn string_mode_op_round_trip_matches_cli() {
    let dir = tmpdir("string-op");
    let (addr, handle) = start(2, 8);
    let db = "a b c\na b d\nc a b\nb a\na b a b\n";
    let db_path = dir.join("db.seq").to_string_lossy().into_owned();
    fs::write(&db_path, db).unwrap();
    for op in ["mark", "delete", "substitute"] {
        for algorithm in ["hh", "rr"] {
            let resp = send_one(
                addr,
                &obj(vec![
                    ("type", Json::Str("sanitize".to_string())),
                    ("db", Json::Str(db.to_string())),
                    ("mode", Json::Str("string".to_string())),
                    ("patterns", str_arr(&["a b"])),
                    ("psi", Json::num(0)),
                    ("op", Json::Str(op.to_string())),
                    ("algorithm", Json::Str(algorithm.to_string())),
                    ("seed", Json::num(9)),
                ]),
            );
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "{op}/{algorithm}: {resp:?}"
            );
            assert_eq!(resp.get("hidden").and_then(Json::as_bool), Some(true));
            let served = resp.get("release").and_then(Json::as_str).unwrap();
            let out_path = dir
                .join(format!("{op}-{algorithm}.out"))
                .to_string_lossy()
                .into_owned();
            cli(&args(&[
                "hide",
                "--db",
                &db_path,
                "--domain",
                "string",
                "--psi",
                "0",
                "--pattern",
                "a b",
                "--op",
                op,
                "--algorithm",
                algorithm,
                "--seed",
                "9",
                "--out",
                &out_path,
            ]))
            .unwrap();
            let expected = fs::read_to_string(&out_path).unwrap();
            assert_eq!(
                served, expected,
                "{op}/{algorithm}: served release diverges from CLI"
            );
            if op != "mark" {
                assert!(!served.contains('Δ'), "{op}: {served}");
            }
        }
    }
    // an edit op outside string mode is shed with the pointed error
    let resp = send_one(
        addr,
        &obj(vec![
            ("type", Json::Str("sanitize".to_string())),
            ("db", Json::Str("a b\n".to_string())),
            ("patterns", str_arr(&["a b"])),
            ("psi", Json::num(0)),
            ("op", Json::Str("delete".to_string())),
        ]),
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("\"mode\":\"string\""));
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// Verify and stats answered over the wire match the CLI's semantics.
#[test]
fn verify_and_stats_requests_execute_on_the_pool() {
    let (addr, handle) = start(2, 8);

    // the pattern is visible in the original db: hidden=false is an OK
    // *answer*, not an error (unlike the CLI's exit code)
    let resp = send_one(
        addr,
        &obj(vec![
            ("type", Json::Str("verify".to_string())),
            ("db", Json::Str("a b c\na c\nb b\n".to_string())),
            ("patterns", str_arr(&["a c"])),
            ("psi", Json::num(0)),
        ]),
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(resp.get("hidden").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("supports").unwrap().as_array().unwrap()[0].as_u64(),
        Some(2)
    );

    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"login@0 search@15\nlogin@2\n","mode":"timed"}"#,
    );
    assert_eq!(resp.get("sequences").and_then(Json::as_u64), Some(2));
    assert_eq!(resp.get("events_total").and_then(Json::as_u64), Some(3));

    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// The backpressure contract: with one worker and a queue of one, a
/// third in-flight job is shed with `overloaded` — the server never
/// buffers beyond its declared bound — and the two admitted jobs still
/// complete.
#[test]
fn full_queue_sheds_with_overloaded_response() {
    let (addr, handle) = start(1, 1);
    let slow = |id: &str| {
        obj(vec![
            ("id", Json::Str(id.to_string())),
            ("type", Json::Str("sanitize".to_string())),
            ("db", Json::Str("a b\nb a\na b a\n".to_string())),
            ("patterns", str_arr(&["a b"])),
            ("psi", Json::num(0)),
            ("delay_ms", Json::num(1000)),
        ])
    };

    // worker pickup is asynchronous, so admission is sequenced via the
    // inline health endpoint: job A must be *on the worker* before B is
    // sent (else B itself would be shed), and B must be *in the queue*
    // before C probes the full-queue path.
    let await_state = |what: &str, pred: &dyn Fn(&Json) -> bool| {
        for _ in 0..400 {
            let h = send_one(addr, r#"{"type":"health"}"#);
            if pred(&h) {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("server never reached state: {what}");
    };
    let mut a = TcpStream::connect(addr).unwrap();
    writeln!(a, "{}", slow("A")).unwrap();
    a.flush().unwrap();
    await_state("A inflight", &|h| {
        h.get("inflight").and_then(Json::as_u64) == Some(1)
    });
    let mut b = TcpStream::connect(addr).unwrap();
    writeln!(b, "{}", slow("B")).unwrap();
    b.flush().unwrap();
    await_state("B queued", &|h| {
        h.get("queue_depth").and_then(Json::as_u64) == Some(1)
    });

    let resp = send_one(addr, &slow("C"));
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("overloaded"),
        "{resp:?}"
    );
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("queue full"));

    // the admitted jobs were not disturbed by the shed one
    for (stream, id) in [(a, "A"), (b, "B")] {
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let resp = json::parse(line.trim_end()).unwrap();
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{id}"
        );
        assert_eq!(resp.get("id").and_then(Json::as_str), Some(id));
    }

    send_one(addr, r#"{"type":"shutdown"}"#);
    let summary = handle.join().unwrap();
    assert_eq!(summary.overloads, 1);
    assert_eq!(summary.executed, 2);
}

/// `seqhide serve` end to end: ephemeral port discovered via
/// `--ready-file`, requests served, `metrics` returns the live snapshot,
/// and shutdown drains into the subcommand's clean summary line (which is
/// what makes the process exit 0).
#[test]
fn cli_serve_subcommand_end_to_end() {
    let dir = tmpdir("cli-e2e");
    let ready = dir.join("ready.addr");
    // the temp dir persists across test runs: a stale ready file from a
    // previous process would point at a dead server
    let _ = fs::remove_file(&ready);
    let ready_arg = ready.to_string_lossy().into_owned();
    let handle = thread::spawn(move || {
        cli(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--queue-depth",
            "8",
            "--ready-file",
            &ready_arg,
            "--metrics-addr",
            "127.0.0.1:0",
        ]))
    });

    // first line: wire address; second line: the Prometheus scrape address
    let mut addrs = None;
    for _ in 0..400 {
        if let Ok(text) = fs::read_to_string(&ready) {
            let lines: Vec<&str> = text.lines().collect();
            if lines.len() == 2 {
                if let (Ok(wire), Ok(scrape)) = (
                    lines[0].parse::<SocketAddr>(),
                    lines[1].parse::<SocketAddr>(),
                ) {
                    addrs = Some((wire, scrape));
                    break;
                }
            }
        }
        thread::sleep(Duration::from_millis(5));
    }
    let (addr, scrape) = addrs.expect("ready file never appeared");

    let resp = send_one(
        addr,
        r#"{"id":1,"type":"sanitize","db":"a b c\nb a c\na c\n","patterns":["a c"],"psi":0}"#,
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert!(resp
        .get("release")
        .and_then(Json::as_str)
        .unwrap()
        .contains('Δ'));

    let resp = send_one(addr, r#"{"id":2,"type":"metrics"}"#);
    let metrics = resp.get("metrics").expect("metrics payload");
    assert_eq!(
        metrics.get("schema_version").and_then(Json::as_u64),
        Some(4),
        "live snapshot carries the v4 schema"
    );
    if seqhide_obs::is_enabled() {
        let requests = metrics
            .get("counters")
            .and_then(|c| c.get("serve_requests"))
            .and_then(Json::as_u64)
            .expect("serve_requests counter");
        assert!(requests >= 1, "live counter should have seen the sanitize");
    }

    // HTTP scrapes don't count as wire requests, so back-to-back GETs of
    // /metrics.json and /metrics see the same totals: the Prometheus
    // counter must equal the JSON snapshot's value exactly.
    let (status, body) = http_get(scrape, "/metrics.json");
    assert_eq!(status, 200, "{body}");
    let snap = json::parse(&body).expect("/metrics.json is JSON");
    let (status, exposition) = http_get(scrape, "/metrics");
    assert_eq!(status, 200, "{exposition}");
    assert_prometheus_exposition(&exposition);
    if seqhide_obs::is_enabled() {
        let json_requests = snap
            .get("counters")
            .and_then(|c| c.get("serve_requests"))
            .and_then(Json::as_u64)
            .expect("serve_requests in JSON scrape");
        assert_eq!(
            prometheus_value(&exposition, "seqhide_serve_requests_total"),
            Some(json_requests as f64),
            "scrape and JSON snapshot disagree:\n{exposition}"
        );
    }
    let (status, health) = http_get(scrape, "/healthz");
    assert_eq!(status, 200, "{health}");
    let health = json::parse(&health).expect("/healthz is JSON");
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_ms").and_then(Json::as_u64).is_some());
    let (status, _) = http_get(scrape, "/nope");
    assert_eq!(status, 404);

    let resp = send_one(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(resp.get("draining").and_then(Json::as_bool), Some(true));
    let out = handle.join().unwrap().unwrap();
    assert!(out.contains("drained clean"), "{out}");
    assert!(
        out.contains("3 request(s)") || out.contains("executed"),
        "{out}"
    );
}

/// Minimal HTTP/1.1 GET: returns (status, body). The metrics listener
/// closes after one response, so read-to-EOF then split on the blank
/// line.
fn http_get(addr: SocketAddr, path: &str) -> (u32, String) {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read HTTP response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("HTTP head/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// Minimal Prometheus text-format checker: every non-empty line is a
/// `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample whose
/// value parses as a float and whose name is a valid metric identifier.
fn assert_prometheus_exposition(text: &str) {
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label set: {line}"
                );
            }
        }
        assert!(name.starts_with("seqhide_"), "unprefixed metric: {line}");
        samples += 1;
    }
    assert!(samples > 0, "exposition has no samples:\n{text}");
}

/// Value of an unlabelled series in an exposition, if present.
fn prometheus_value(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|r| r.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

#[test]
fn sanitize_responses_carry_a_timings_breakdown() {
    let (addr, handle) = start(1, 4);
    let resp = send_one(
        addr,
        r#"{"id":9,"type":"sanitize","db":"a b c\nb a c\na c\n","patterns":["a c"],"psi":0}"#,
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let timings = resp.get("timings").expect("timings object");
    assert!(timings.get("req_id").and_then(Json::as_u64).is_some());
    for leg in ["queue_wait_ns", "parse_ns", "sanitize_ns", "serialize_ns"] {
        assert!(
            timings.get(leg).and_then(Json::as_u64).is_some(),
            "missing {leg} in {resp:?}"
        );
    }
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

#[test]
fn health_reports_uptime_version_and_high_water_marks() {
    let (addr, handle) = start(2, 4);
    // one sanitize first so the in-flight high-water mark is ≥ 1
    send_one(
        addr,
        r#"{"type":"sanitize","db":"a b\nb a\n","patterns":["a b"],"psi":0}"#,
    );
    let resp = send_one(addr, r#"{"type":"health"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        resp.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(resp.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert!(
        resp.get("inflight_high_water").and_then(Json::as_u64) >= Some(1),
        "{resp:?}"
    );
    assert!(resp
        .get("queue_depth_high_water")
        .and_then(Json::as_u64)
        .is_some());
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

#[test]
fn debug_dumps_a_slow_request_journal() {
    let (addr, handle) = start(1, 4);
    send_one(
        addr,
        r#"{"type":"sanitize","db":"a b c\nb a c\n","patterns":["a b"],"psi":0}"#,
    );
    let resp = send_one(addr, r#"{"id":3,"type":"debug"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let tracked = resp.get("tracked").and_then(Json::as_u64).unwrap();
    let slowest = resp.get("slowest").and_then(Json::as_array).unwrap();
    if seqhide_obs::is_enabled() {
        assert!(tracked >= 1, "{resp:?}");
        assert!(!slowest.is_empty(), "{resp:?}");
        let trace = &slowest[0];
        assert!(trace.get("req_id").and_then(Json::as_u64).is_some());
        assert!(trace.get("total_ns").and_then(Json::as_u64).is_some());
        let events = trace.get("events").and_then(Json::as_array).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("event").and_then(Json::as_str))
            .collect();
        for expected in ["received", "parsed", "admitted", "dequeued", "exec_start"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // timestamps are monotonic within the timeline
        let stamps: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("at_ns").and_then(Json::as_u64))
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
    } else {
        assert_eq!(tracked, 0, "obs-off build retains no traces");
        assert!(slowest.is_empty());
    }
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// Scrapes under live load: wire `metrics` counters are monotonic across
/// consecutive reads while sanitize traffic is in flight, and the
/// Prometheus wire variant stays well-formed throughout.
#[test]
fn concurrent_metrics_scrapes_stay_monotonic_under_load() {
    let (addr, handle) = start(2, 16);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loaders: Vec<_> = (0..2)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    send_one(
                        addr,
                        r#"{"type":"sanitize","db":"a b c\nb a c\na c\n","patterns":["a c"],"psi":0,"delay_ms":2}"#,
                    );
                }
            })
        })
        .collect();

    let mut last = 0u64;
    for _ in 0..5 {
        let resp = send_one(addr, r#"{"type":"metrics"}"#);
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        if seqhide_obs::is_enabled() {
            let requests = resp
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("serve_requests"))
                .and_then(Json::as_u64)
                .expect("serve_requests counter");
            assert!(
                requests >= last,
                "counter went backwards: {last} -> {requests}"
            );
            last = requests;
        }
        let resp = send_one(addr, r#"{"type":"metrics","format":"prometheus"}"#);
        assert_eq!(
            resp.get("format").and_then(Json::as_str),
            Some("prometheus")
        );
        let exposition = resp
            .get("metrics")
            .and_then(Json::as_str)
            .expect("exposition string");
        assert_prometheus_exposition(exposition);
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for loader in loaders {
        loader.join().unwrap();
    }
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// One request on an already-open connection; reads one response line.
fn send_on(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> Json {
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    json::parse(line.trim_end()).expect("response is JSON")
}

fn load_request(name: &str, db: &str) -> String {
    obj(vec![
        ("type", Json::Str("load".to_string())),
        ("name", Json::Str(name.to_string())),
        ("db", Json::Str(db.to_string())),
    ])
}

/// The tentpole guarantee on the wire: a sanitize that references an
/// interned dataset by name is **byte-identical** to one shipping the
/// same database inline, for every pattern class and every HH/HR/RH/RR
/// algorithm — interning must not perturb results, only transport.
#[test]
fn dataset_referenced_sanitize_is_byte_identical_to_inline() {
    let (addr, handle) = start(2, 16);
    for case in CASES {
        let name = format!("ds-{}", case.name);
        let resp = send_one(addr, &load_request(&name, case.db));
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}: {resp:?}",
            case.name
        );
        assert_eq!(resp.get("name").and_then(Json::as_str), Some(name.as_str()));
        assert_eq!(
            resp.get("bytes").and_then(Json::as_u64),
            Some(case.db.len() as u64)
        );
        assert_eq!(resp.get("origin").and_then(Json::as_str), Some("inline"));
        for algorithm in ["hh", "hr", "rh", "rr"] {
            let inline = send_one(addr, &sanitize_request(case, algorithm, 7));
            let by_name = send_one(
                addr,
                &sanitize_request_from(case, algorithm, 7, Some(&name)),
            );
            assert_eq!(
                by_name.get("status").and_then(Json::as_str),
                Some("ok"),
                "{}/{algorithm}: {by_name:?}",
                case.name
            );
            assert_eq!(
                by_name.get("release").and_then(Json::as_str),
                inline.get("release").and_then(Json::as_str),
                "{}/{algorithm}: dataset-referenced release diverges from inline",
                case.name
            );
            assert_eq!(
                by_name.get("marks").and_then(Json::as_u64),
                inline.get("marks").and_then(Json::as_u64),
                "{}/{algorithm}",
                case.name
            );
        }
    }
    let resp = send_one(addr, r#"{"type":"datasets"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), CASES.len(), "{resp:?}");
    // sorted by name, each row carries the full shape
    let names: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("name").and_then(Json::as_str))
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "listing not sorted: {names:?}");
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// Registry lifecycle on the wire: duplicate names are refused,
/// unloading while a sanitize holds the snapshot does not disturb the
/// in-flight job, and the name is gone afterwards.
#[test]
fn unload_during_inflight_sanitize_completes_then_name_is_gone() {
    let (addr, handle) = start(1, 4);
    let db = "a b\nb a\na b a\n";
    let resp = send_one(addr, &load_request("race", db));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));

    // a second load under the same name is refused, not replaced
    let resp = send_one(addr, &load_request("race", "x y\n"));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("already loaded"),
        "{resp:?}"
    );

    // a slow sanitize resolves the name to a snapshot at admission...
    let mut slow = TcpStream::connect(addr).unwrap();
    writeln!(
        slow,
        r#"{{"id":"slow","type":"sanitize","dataset":"race","patterns":["a b"],"psi":0,"delay_ms":400}}"#
    )
    .unwrap();
    slow.flush().unwrap();
    for _ in 0..400 {
        let h = send_one(addr, r#"{"type":"health"}"#);
        if h.get("inflight").and_then(Json::as_u64) == Some(1) {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }

    // ...so unloading mid-flight succeeds without breaking the job
    let resp = send_one(addr, r#"{"type":"unload","name":"race"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(resp.get("unloaded").and_then(Json::as_bool), Some(true));

    let mut line = String::new();
    BufReader::new(slow).read_line(&mut line).unwrap();
    let resp = json::parse(line.trim_end()).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "in-flight sanitize broken by unload: {line}"
    );
    assert!(resp
        .get("release")
        .and_then(Json::as_str)
        .unwrap()
        .contains('Δ'));

    // the name no longer resolves
    let resp = send_one(
        addr,
        r#"{"type":"sanitize","dataset":"race","patterns":["a b"],"psi":0}"#,
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown dataset"),
        "{resp:?}"
    );
    let resp = send_one(addr, r#"{"type":"unload","name":"race"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));

    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// The two other load transports — a server-side `path` and a chunked
/// stream on one connection — intern the same bytes as an inline load,
/// shown by identical sanitize releases and listing rows.
#[test]
fn path_and_chunked_loads_match_inline() {
    let dir = tmpdir("load-transports");
    let (addr, handle) = start(1, 4);
    let db = "a b c\nb a c\nc c a\na c\n";
    let db_path = dir.join("transport.db");
    fs::write(&db_path, db).unwrap();

    let resp = send_one(addr, &load_request("by-inline", db));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));

    let resp = send_one(
        addr,
        &obj(vec![
            ("type", Json::Str("load".to_string())),
            ("name", Json::Str("by-path".to_string())),
            ("path", Json::Str(db_path.to_string_lossy().into_owned())),
        ]),
    );
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp:?}"
    );
    assert_eq!(resp.get("origin").and_then(Json::as_str), Some("path"));
    assert_eq!(
        resp.get("bytes").and_then(Json::as_u64),
        Some(db.len() as u64)
    );

    // chunked: staging lives on the connection; split mid-line to show
    // reassembly is byte-oriented, not line-oriented
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = send_on(
        &mut stream,
        &mut reader,
        r#"{"type":"load","name":"by-chunks","chunks":true}"#,
    );
    assert_eq!(
        resp.get("staged").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    let (first, second) = db.split_at(9);
    let resp = send_on(
        &mut stream,
        &mut reader,
        &obj(vec![
            ("type", Json::Str("load_chunk".to_string())),
            ("data", Json::Str(first.to_string())),
        ]),
    );
    assert_eq!(
        resp.get("received_bytes").and_then(Json::as_u64),
        Some(first.len() as u64),
        "{resp:?}"
    );
    let resp = send_on(
        &mut stream,
        &mut reader,
        &obj(vec![
            ("type", Json::Str("load_chunk".to_string())),
            ("data", Json::Str(second.to_string())),
            ("last", Json::Bool(true)),
        ]),
    );
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp:?}"
    );
    assert_eq!(resp.get("origin").and_then(Json::as_str), Some("chunks"));
    assert_eq!(
        resp.get("bytes").and_then(Json::as_u64),
        Some(db.len() as u64)
    );
    assert_eq!(resp.get("sequences").and_then(Json::as_u64), Some(4));

    // all three transports produce the same release
    let sanitize = |dataset: &str| {
        let resp = send_one(
            addr,
            &obj(vec![
                ("type", Json::Str("sanitize".to_string())),
                ("dataset", Json::Str(dataset.to_string())),
                ("patterns", str_arr(&["a c"])),
                ("psi", Json::num(0)),
                ("seed", Json::num(3)),
            ]),
        );
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{dataset}: {resp:?}"
        );
        resp.get("release")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    let inline = sanitize("by-inline");
    assert_eq!(sanitize("by-path"), inline);
    assert_eq!(sanitize("by-chunks"), inline);

    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// Restart persistence: a dataset loaded into a `--data-dir` server is
/// re-attached by a fresh server over the same directory and serves the
/// identical release; unloading removes its store file.
#[test]
fn data_dir_datasets_survive_a_server_restart() {
    let dir = tmpdir("restart").join("store");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let db = "a b c\nb a c\nc c a\na c\na b a b\n";
    let case_request = |name: &str| {
        obj(vec![
            ("type", Json::Str("sanitize".to_string())),
            ("dataset", Json::Str(name.to_string())),
            ("patterns", str_arr(&["a c", "a b"])),
            ("psi", Json::num(0)),
            ("seed", Json::num(5)),
        ])
    };

    let (addr, handle) = start_with_dir(1, 4, Some(&dir));
    let resp = send_one(addr, &load_request("trucks", db));
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp:?}"
    );
    assert!(
        resp.get("shards").and_then(Json::as_u64) >= Some(1),
        "{resp:?}"
    );
    assert!(dir.join("trucks.sqds").exists(), "store file not committed");
    let before = send_one(addr, &case_request("trucks"));
    assert_eq!(before.get("status").and_then(Json::as_str), Some("ok"));
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();

    // a fresh server over the same directory re-attaches the dataset
    let (addr, handle) = start_with_dir(1, 4, Some(&dir));
    let resp = send_one(addr, r#"{"type":"datasets"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 1, "{resp:?}");
    assert_eq!(rows[0].get("name").and_then(Json::as_str), Some("trucks"));
    assert_eq!(
        rows[0].get("origin").and_then(Json::as_str),
        Some("reattach")
    );
    let after = send_one(addr, &case_request("trucks"));
    assert_eq!(
        after.get("release").and_then(Json::as_str),
        before.get("release").and_then(Json::as_str),
        "re-attached dataset serves a different release"
    );

    let resp = send_one(addr, r#"{"type":"unload","name":"trucks"}"#);
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        !dir.join("trucks.sqds").exists(),
        "unload left the store file behind"
    );
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// In-process loadgen against an in-process server: the report counts
/// every response, latency quantiles are ordered, and the BENCH JSON
/// carries the named fields CI asserts on.
#[test]
fn loadgen_drives_a_server_and_reports() {
    use seqhide::serve::loadgen::{self, LoadgenOptions};
    let (addr, handle) = start(2, 8);
    let report = loadgen::run(&LoadgenOptions {
        addr: addr.to_string(),
        clients: 3,
        duration: Duration::from_millis(400),
        psi: 2,
        seed: 11,
        db: None,
        sequences: 12,
        dataset: None,
        delta_fraction: 0.0,
        tenants: 0,
        hog_fraction: 0.0,
    })
    .expect("loadgen run");
    assert!(report.requests > 0);
    assert_eq!(
        report.requests,
        report.ok + report.overloaded + report.errors
    );
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.latency.count, report.requests);
    assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.50));
    assert!(report.shed_rate() >= 0.0 && report.shed_rate() <= 1.0);
    let json = report.to_bench_json(&LoadgenOptions::default());
    for key in [
        "\"bench\": \"serve\"",
        "\"throughput_rps\"",
        "\"p99\"",
        "\"drain_ms\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// A loadgen run with mutation traffic: `delta_fraction` draws `delta`
/// requests against the pre-loaded dataset, every one succeeds, and the
/// delta latency histogram plus the BENCH fields are populated.
#[test]
fn loadgen_delta_traffic_mutates_the_dataset() {
    use seqhide::serve::loadgen::{self, LoadgenOptions};
    let (addr, handle) = start(2, 8);
    let options = LoadgenOptions {
        addr: addr.to_string(),
        clients: 2,
        duration: Duration::from_millis(400),
        psi: 2,
        seed: 3,
        db: None,
        sequences: 12,
        dataset: Some("churn".to_string()),
        delta_fraction: 0.5,
        tenants: 0,
        hog_fraction: 0.0,
    };
    let report = loadgen::run(&options).expect("loadgen run");
    assert_eq!(report.errors, 0, "{report:?}");
    let delta_sent = report
        .mix
        .iter()
        .find(|t| t.name == "delta")
        .map(|t| t.sent)
        .unwrap_or(0);
    assert!(delta_sent > 0, "no delta requests drawn: {:?}", report.mix);
    assert_eq!(report.delta_latency.count, delta_sent);
    let json = report.to_bench_json(&options);
    assert!(json.contains("\"delta_fraction\": 0.5000"), "{json}");
    assert!(json.contains("\"delta_latency_ns\""), "{json}");
    // the dataset's version climbed by exactly the applied deltas
    let resp = send_one(addr, r#"{"type":"datasets"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(rows[0].get("name").and_then(Json::as_str), Some("churn"));
    assert_eq!(
        rows[0].get("version").and_then(Json::as_u64),
        Some(1 + delta_sent),
        "{resp:?}"
    );
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

/// The `delta` wire op end to end: a stream of mutations climbs the
/// dataset's version, each post-delta release is byte-identical to a
/// fresh inline sanitize of the mutated database under the same
/// (algorithm, ψ, seed), a refused batch leaves the version alone, and
/// the `datasets` listing reports `version` + `last_modified`.
#[test]
fn delta_stream_matches_fresh_sanitize_and_versions_climb() {
    let (addr, handle) = start(2, 8);
    let resp = send_one(
        addr,
        &load_request("churn", "a b c\nb a c\nc c a\na c\nb b\n"),
    );
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp:?}"
    );

    // the client-side mirror of the database the deltas produce
    let mut lines: Vec<String> = ["a b c", "b a c", "c c a", "a c", "b b"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let edits: &[(&[&str], &[usize])] =
        &[(&["c a c", "a c b"], &[1]), (&[], &[0, 2]), (&["a c"], &[])];
    for (round, (add, remove)) in edits.iter().enumerate() {
        let request = obj(vec![
            ("type", Json::Str("delta".to_string())),
            ("dataset", Json::Str("churn".to_string())),
            ("add", str_arr(add)),
            (
                "remove",
                Json::Arr(remove.iter().map(|&o| Json::num(o as u64)).collect()),
            ),
            ("patterns", str_arr(&["a c"])),
            ("psi", Json::num(1)),
            ("algorithm", Json::Str("rr".to_string())),
            ("seed", Json::num(7)),
            ("release", Json::Bool(true)),
        ]);
        let resp = send_one(addr, &request);
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "round {round}: {resp:?}"
        );
        assert_eq!(
            resp.get("version").and_then(Json::as_u64),
            Some(round as u64 + 2),
            "round {round}: {resp:?}"
        );
        // apply the same edit to the mirror: ordinals vanish, adds append
        lines = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(i))
            .map(|(_, l)| l.clone())
            .chain(add.iter().map(|s| s.to_string()))
            .collect();
        assert_eq!(
            resp.get("sequences").and_then(Json::as_u64),
            Some(lines.len() as u64),
            "round {round}"
        );
        // the post-delta release is byte-identical to sanitizing the
        // mutated database from scratch with the same parameters
        let mirror_text = lines.join("\n") + "\n";
        let fresh = send_one(
            addr,
            &obj(vec![
                ("type", Json::Str("sanitize".to_string())),
                ("db", Json::Str(mirror_text)),
                ("patterns", str_arr(&["a c"])),
                ("psi", Json::num(1)),
                ("algorithm", Json::Str("rr".to_string())),
                ("seed", Json::num(7)),
            ]),
        );
        assert_eq!(
            resp.get("release").and_then(Json::as_str),
            fresh.get("release").and_then(Json::as_str),
            "round {round}: delta release diverges from fresh sanitize"
        );
        assert_eq!(
            resp.get("marks").and_then(Json::as_u64),
            fresh.get("marks").and_then(Json::as_u64),
            "round {round}"
        );
        assert_eq!(
            resp.get("residual_supports"),
            fresh.get("residual_supports"),
            "round {round}"
        );
    }

    // a refused batch reports the bad ordinal and moves nothing
    let resp = send_one(
        addr,
        r#"{"type":"delta","dataset":"churn","add":[],"remove":[99],"patterns":["a c"],"psi":1}"#,
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("99"),
        "{resp:?}"
    );
    let resp = send_one(addr, r#"{"type":"datasets"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(
        rows[0].get("version").and_then(Json::as_u64),
        Some(4),
        "{resp:?}"
    );
    assert!(
        rows[0].get("last_modified").and_then(Json::as_u64) > Some(0),
        "{resp:?}"
    );
    // a delta against an unknown dataset is pointed, not a panic
    let resp = send_one(
        addr,
        r#"{"type":"delta","dataset":"ghost","add":[],"remove":[],"patterns":["a"],"psi":0}"#,
    );
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown dataset 'ghost'"),
        "{resp:?}"
    );
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

// ---------------------------------------------------------------------
// Multi-tenant admission control
// ---------------------------------------------------------------------

/// Writes a request and returns the stream without reading the reply,
/// so the job sits in the server (running or queued) while the test
/// arranges the next step. Read the buffered response later.
fn send_async(addr: SocketAddr, request: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    stream
}

fn read_response(stream: TcpStream) -> Json {
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    json::parse(line.trim_end()).expect("response is JSON")
}

fn status_of(resp: &Json) -> Option<&str> {
    resp.get("status").and_then(Json::as_str)
}

/// Polls `health` (a control op — answered inline, never queued) until
/// the server reports the given queue depth and inflight count, so
/// tests sequence on observed state instead of racy sleeps.
fn wait_for_state(addr: SocketAddr, token: &str, queue_depth: u64, inflight: u64) {
    let request = format!(r#"{{"type":"health","tenant":"{token}"}}"#);
    for _ in 0..500 {
        let resp = send_one(addr, &request);
        if resp.get("queue_depth").and_then(Json::as_u64) == Some(queue_depth)
            && resp.get("inflight").and_then(Json::as_u64) == Some(inflight)
        {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("server never reached queue_depth={queue_depth} inflight={inflight}");
}

/// Like [`wait_for_state`] but only requires the inflight count, for
/// tests where the queue is draining while we watch.
fn wait_for_inflight(addr: SocketAddr, token: &str, inflight: u64) {
    let request = format!(r#"{{"type":"health","tenant":"{token}"}}"#);
    for _ in 0..500 {
        let resp = send_one(addr, &request);
        if resp.get("inflight").and_then(Json::as_u64) == Some(inflight) {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("server never reached inflight={inflight}");
}

#[test]
fn default_mode_accepts_and_ignores_tenant_tokens() {
    let (addr, handle) = start(1, 4);
    // any token (or none) resolves to the permissive default tenant
    let resp = send_one(
        addr,
        r#"{"type":"sanitize","db":"a b c\nb a c\na c\n","patterns":["a c"],"psi":0,"tenant":"whoever"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"));
    let resp = send_one(addr, r#"{"type":"health","tenant":"smoke"}"#);
    assert_eq!(status_of(&resp), Some("ok"));
    // single-tenant responses carry none of the tenant-only fields
    assert!(resp.get("tenants").is_none(), "{resp:?}");
    assert!(resp.get("tenant_queue_high_water").is_none(), "{resp:?}");
    let resp = send_one(
        addr,
        r#"{"type":"load","name":"plain","db":"a b\n","tenant":"smoke"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"));
    let resp = send_one(addr, r#"{"type":"datasets"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert!(rows[0].get("owner").is_none(), "{resp:?}");
    send_one(addr, r#"{"type":"shutdown"}"#);
    handle.join().unwrap();
}

#[test]
fn unknown_tokens_are_refused_in_multi_tenant_mode() {
    let (addr, handle) = start_with_tenants(
        1,
        4,
        "tenant alpha\ntoken = a-key\n\ntenant beta\ntoken = b-key\n",
    );
    let resp = send_one(addr, r#"{"type":"health","tenant":"nope"}"#);
    assert_eq!(status_of(&resp), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown tenant token"),
        "{resp:?}"
    );
    // no default tenant in this config: a missing token is refused too
    let resp = send_one(addr, r#"{"type":"health"}"#);
    assert_eq!(status_of(&resp), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no default tenant"),
        "{resp:?}"
    );
    send_one(addr, r#"{"type":"shutdown","tenant":"a-key"}"#);
    handle.join().unwrap();
}

#[test]
fn a_hogs_backlog_does_not_starve_a_light_tenants_first_request() {
    // One worker, a deep global queue: the hog parks a backlog of slow
    // jobs, then the light tenant's *first* request arrives. Weighted
    // fair drain must run it after at most one more hog job, so it
    // finishes well before the hog's backlog.
    let (addr, handle) = start_with_tenants(
        1,
        16,
        "tenant hog\ntoken = hog-key\n\ntenant light\ntoken = light-key\n",
    );
    let slow = r#"{"type":"sanitize","db":"a b\n","patterns":["a b"],"psi":0,"delay_ms":300,"tenant":"hog-key"}"#;
    let backlog: Vec<TcpStream> = (0..6).map(|_| send_async(addr, slow)).collect();
    // the worker must have started the first hog job so the rest queue
    wait_for_inflight(addr, "hog-key", 1);
    let light_started = std::time::Instant::now();
    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"a b\nc\n","mode":"plain","tenant":"light-key"}"#,
    );
    let light_elapsed = light_started.elapsed();
    assert_eq!(status_of(&resp), Some("ok"));
    // 6 hog jobs × 300ms serialize to ~1.8s; the light request must not
    // have waited out that backlog (at most the running job + one more
    // hog job ahead of it, plus scheduling slack)
    assert!(
        light_elapsed < Duration::from_millis(1200),
        "light tenant waited {light_elapsed:?} behind the hog's backlog"
    );
    for stream in backlog {
        assert_eq!(status_of(&read_response(stream)), Some("ok"));
    }
    send_one(addr, r#"{"type":"shutdown","tenant":"light-key"}"#);
    handle.join().unwrap();
}

#[test]
fn quota_exceeded_and_overloaded_shed_distinctly() {
    // capped tenant: 1 queued job at most; roomy tenant: no quota.
    // Global capacity 2. The capped tenant's second queued job sheds as
    // quota_exceeded (its own budget), the roomy tenant's overflow
    // sheds as overloaded (the shared bound) — different statuses,
    // different meanings.
    let (addr, handle) = start_with_tenants(
        1,
        2,
        "tenant capped\ntoken = cap-key\nmax_queued = 1\n\ntenant roomy\ntoken = room-key\n",
    );
    let slow = r#"{"type":"sanitize","db":"a b\n","patterns":["a b"],"psi":0,"delay_ms":3000,"tenant":"cap-key"}"#;
    let running = send_async(addr, slow);
    wait_for_state(addr, "cap-key", 0, 1); // worker picked it up
    let queued = send_async(
        addr,
        r#"{"type":"stats","db":"a\n","mode":"plain","tenant":"cap-key"}"#,
    );
    wait_for_state(addr, "cap-key", 1, 1); // it is in the lane
    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"a\n","mode":"plain","tenant":"cap-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("quota_exceeded"), "{resp:?}");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("tenant 'capped'"),
        "{resp:?}"
    );
    // the roomy tenant fills the remaining global slot...
    let filler = send_async(
        addr,
        r#"{"type":"stats","db":"a\n","mode":"plain","tenant":"room-key"}"#,
    );
    wait_for_state(addr, "room-key", 2, 1);
    // ...and its next job hits the shared bound: classic overloaded
    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"a\n","mode":"plain","tenant":"room-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("overloaded"), "{resp:?}");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("job queue full (2 waiting)"),
        "{resp:?}"
    );
    for stream in [running, queued, filler] {
        assert_eq!(status_of(&read_response(stream)), Some("ok"));
    }
    send_one(addr, r#"{"type":"shutdown","tenant":"room-key"}"#);
    handle.join().unwrap();
}

#[test]
fn rate_limited_tenants_get_a_retry_after_hint() {
    let (addr, handle) = start_with_tenants(
        2,
        8,
        "tenant throttled\ntoken = thr-key\nrate = 0.5\nburst = 1\n\ntenant free\ntoken = free-key\ndefault = true\n",
    );
    // burst of 1: the first heavy request passes, the second sheds
    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"a b\n","mode":"plain","tenant":"thr-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"));
    let resp = send_one(
        addr,
        r#"{"type":"stats","db":"a b\n","mode":"plain","tenant":"thr-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("overloaded"), "{resp:?}");
    let retry = resp.get("retry_after_ms").and_then(Json::as_u64).unwrap();
    assert!(retry > 0, "{resp:?}");
    // control requests are not rate-gated, and other tenants are free
    assert_eq!(
        status_of(&send_one(addr, r#"{"type":"health","tenant":"thr-key"}"#)),
        Some("ok")
    );
    assert_eq!(
        status_of(&send_one(
            addr,
            r#"{"type":"stats","db":"a b\n","mode":"plain","tenant":"free-key"}"#
        )),
        Some("ok")
    );
    send_one(addr, r#"{"type":"shutdown","tenant":"free-key"}"#);
    handle.join().unwrap();
}

#[test]
fn pinned_bytes_quota_gates_loads_and_unload_frees_budget() {
    let (addr, handle) =
        start_with_tenants(1, 4, "tenant small\ntoken = s-key\nmax_pinned_bytes = 64\n");
    // 100 bytes: over budget outright, and the dataset must not exist
    let big = "x".repeat(99) + "\n";
    let resp = send_one(
        addr,
        &obj(vec![
            ("type", Json::Str("load".to_string())),
            ("name", Json::Str("big".to_string())),
            ("db", Json::Str(big)),
            ("tenant", Json::Str("s-key".to_string())),
        ]),
    );
    assert_eq!(status_of(&resp), Some("quota_exceeded"), "{resp:?}");
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("pinned-bytes quota"),
        "{resp:?}"
    );
    // 32 bytes fits; a second 40-byte load would breach 64
    let first = "a".repeat(31) + "\n";
    let second = "b".repeat(39) + "\n";
    let load = |name: &str, text: &str| {
        obj(vec![
            ("type", Json::Str("load".to_string())),
            ("name", Json::Str(name.to_string())),
            ("db", Json::Str(text.to_string())),
            ("tenant", Json::Str("s-key".to_string())),
        ])
    };
    assert_eq!(
        status_of(&send_one(addr, &load("first", &first))),
        Some("ok")
    );
    let resp = send_one(addr, &load("second", &second));
    assert_eq!(status_of(&resp), Some("quota_exceeded"), "{resp:?}");
    // unloading refunds the ledger and the refused load now fits
    assert_eq!(
        status_of(&send_one(
            addr,
            r#"{"type":"unload","name":"first","tenant":"s-key"}"#
        )),
        Some("ok")
    );
    assert_eq!(
        status_of(&send_one(addr, &load("second", &second))),
        Some("ok")
    );
    send_one(addr, r#"{"type":"shutdown","tenant":"s-key"}"#);
    handle.join().unwrap();
}

#[test]
fn dataset_ownership_guards_unload_and_delta() {
    let (addr, handle) = start_with_tenants(
        1,
        4,
        "tenant alpha\ntoken = a-key\n\ntenant beta\ntoken = b-key\n",
    );
    let resp = send_one(
        addr,
        r#"{"type":"load","name":"corp","db":"a b c\nb a c\na c\n","tenant":"a-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"));
    // the owner is visible in the listing
    let resp = send_one(addr, r#"{"type":"datasets","tenant":"b-key"}"#);
    let rows = resp.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(
        rows[0].get("owner").and_then(Json::as_str),
        Some("alpha"),
        "{resp:?}"
    );
    // another tenant may read it, but not unload or mutate it
    let resp = send_one(
        addr,
        r#"{"type":"sanitize","dataset":"corp","patterns":["a c"],"psi":0,"tenant":"b-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"), "{resp:?}");
    let resp = send_one(addr, r#"{"type":"unload","name":"corp","tenant":"b-key"}"#);
    assert_eq!(status_of(&resp), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("owned by tenant 'alpha'"),
        "{resp:?}"
    );
    let resp = send_one(
        addr,
        r#"{"type":"delta","dataset":"corp","add":["c c"],"remove":[],"patterns":["a c"],"psi":0,"tenant":"b-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("error"));
    assert!(
        resp.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("may not apply deltas"),
        "{resp:?}"
    );
    // the owner can do both
    let resp = send_one(
        addr,
        r#"{"type":"delta","dataset":"corp","add":["c c"],"remove":[],"patterns":["a c"],"psi":0,"tenant":"a-key"}"#,
    );
    assert_eq!(status_of(&resp), Some("ok"), "{resp:?}");
    assert_eq!(
        status_of(&send_one(
            addr,
            r#"{"type":"unload","name":"corp","tenant":"a-key"}"#
        )),
        Some("ok")
    );
    send_one(addr, r#"{"type":"shutdown","tenant":"a-key"}"#);
    handle.join().unwrap();
}

#[test]
fn multi_tenant_health_and_metrics_carry_per_tenant_rows() {
    let (addr, handle) = start_with_tenants(
        1,
        4,
        "tenant alpha\ntoken = a-key\nweight = 3\n\ntenant beta\ntoken = b-key\n",
    );
    // drive one heavy request through each tenant's lane
    for token in ["a-key", "b-key"] {
        let resp = send_one(
            addr,
            &obj(vec![
                ("type", Json::Str("stats".to_string())),
                ("db", Json::Str("a b\nc\n".to_string())),
                ("mode", Json::Str("plain".to_string())),
                ("tenant", Json::Str(token.to_string())),
            ]),
        );
        assert_eq!(status_of(&resp), Some("ok"));
    }
    let resp = send_one(addr, r#"{"type":"health","tenant":"a-key"}"#);
    assert_eq!(
        resp.get("tenants").and_then(Json::as_u64),
        Some(2),
        "{resp:?}"
    );
    let hw = resp.get("tenant_queue_high_water").unwrap();
    assert!(hw.get("alpha").and_then(Json::as_u64).is_some(), "{resp:?}");
    assert!(hw.get("beta").and_then(Json::as_u64).is_some(), "{resp:?}");
    // the wire metrics carry labeled per-tenant series
    let resp = send_one(
        addr,
        r#"{"type":"metrics","format":"prometheus","tenant":"b-key"}"#,
    );
    let text = resp.get("metrics").and_then(Json::as_str).unwrap();
    assert!(
        text.contains("seqhide_tenant_requests_total{tenant=\"alpha\"}"),
        "{text}"
    );
    assert!(
        text.contains("seqhide_tenant_requests_total{tenant=\"beta\"}"),
        "{text}"
    );
    send_one(addr, r#"{"type":"shutdown","tenant":"a-key"}"#);
    handle.join().unwrap();
}

#[test]
fn drain_delivers_jobs_parked_behind_an_inflight_cap() {
    // serialized tenant: one job running, one parked behind the
    // in-flight cap (deferred, NOT shed). Shutdown must deliver both —
    // the drain guarantee covers capped sub-queues too.
    let (addr, handle) = start_with_tenants(
        2,
        8,
        "tenant serialized\ntoken = ser-key\nmax_inflight = 1\n",
    );
    let slow = r#"{"type":"sanitize","db":"a b\n","patterns":["a b"],"psi":0,"delay_ms":500,"tenant":"ser-key"}"#;
    let first = send_async(addr, slow);
    wait_for_state(addr, "ser-key", 0, 1);
    let parked = send_async(
        addr,
        r#"{"type":"stats","db":"a b\nc\n","mode":"plain","tenant":"ser-key"}"#,
    );
    // the cap defers the parked job: queued 1, inflight still 1
    wait_for_state(addr, "ser-key", 1, 1);
    send_one(addr, r#"{"type":"shutdown","tenant":"ser-key"}"#);
    assert_eq!(status_of(&read_response(first)), Some("ok"));
    assert_eq!(status_of(&read_response(parked)), Some("ok"));
    let summary = handle.join().unwrap();
    assert_eq!(summary.executed, 2);
}
