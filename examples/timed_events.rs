//! Events with real-time tags (§7.2): hiding a clinically sensitive event
//! pattern where sensitivity depends on *elapsed time*, not index distance.
//!
//! Patient event streams carry timestamps (hours). The sensitive pattern —
//! an HIV test followed by an antiretroviral prescription **within 72
//! hours** — is expressed with a time-gap constraint; the same events
//! months apart are not considered disclosing.
//!
//! ```sh
//! cargo run --example timed_events
//! ```

use seqhide::core::timed::{
    sanitize_timed_db, supports_timed, TimeConstraints, TimeGap, TimedPattern,
};
use seqhide::core::LocalStrategy;
use seqhide::types::{Alphabet, Sequence, TimedSequence};

fn main() {
    let mut sigma = Alphabet::new();
    let visit = sigma.intern("visit").id();
    let hiv_test = sigma.intern("hiv-test").id();
    let arv = sigma.intern("arv-prescription").id();
    let xray = sigma.intern("x-ray").id();

    // Patient event streams: (event, hour).
    let mut db: Vec<TimedSequence> = vec![
        // test → prescription after 24h: sensitive
        TimedSequence::from_pairs([(visit, 0), (hiv_test, 2), (arv, 26), (visit, 100)]),
        // test → prescription after 60h: sensitive
        TimedSequence::from_pairs([(hiv_test, 10), (xray, 40), (arv, 70)]),
        // test → prescription after ~6 months: NOT sensitive under the
        // 72-hour rule (routine care, no inference possible)
        TimedSequence::from_pairs([(hiv_test, 0), (visit, 2000), (arv, 4400)]),
        // no test at all
        TimedSequence::from_pairs([(visit, 0), (xray, 5), (visit, 50)]),
    ];

    let pattern = TimedPattern::new(
        Sequence::from_ids([hiv_test, arv]),
        TimeConstraints::uniform_gap(TimeGap {
            min: 0,
            max: Some(72),
        }),
    )
    .unwrap();

    let supporters = db.iter().filter(|t| supports_timed(t, &pattern)).count();
    println!(
        "sensitive ⟨hiv-test →≤72h arv⟩ — support {supporters} of {}",
        db.len()
    );
    assert_eq!(supporters, 2);

    let report = sanitize_timed_db(
        &mut db,
        std::slice::from_ref(&pattern),
        0,
        LocalStrategy::Heuristic,
        3,
    );
    println!(
        "sanitized: {} event marks in {} streams; hidden = {}",
        report.marks_introduced, report.sequences_sanitized, report.hidden
    );
    assert!(report.hidden);

    println!("\nreleased streams (Δ@t = suppressed event, instant preserved):");
    for t in &db {
        println!("  {t:?}");
    }
    // The 6-month patient's record is untouched: the time constraint spared it.
    assert_eq!(db[2].mark_count(), 0);
    println!("\npatient 3 (6-month interval) untouched — time constraints localise damage");
}
