//! Web-usage-log scenario (§1): hiding a sensitive navigation path from
//! session logs, with gap constraints and a mark-free release.
//!
//! A clickstream pattern is usually only sensitive when the pages were
//! visited in *direct succession* — a user who opened `pricing` days of
//! browsing after `competitor-comparison` reveals little. Gap constraints
//! (§5) express exactly that, and the second stage (§4) produces a release
//! without Δ marks.
//!
//! ```sh
//! cargo run --example weblog_hiding
//! ```

use seqhide::core::post::{delete_markers_safe, replace_markers};
use seqhide::core::{verify_hidden, Sanitizer};
use seqhide::matching::{ConstraintSet, Gap, SensitivePattern, SensitiveSet};
use seqhide::mine::{MinerConfig, PrefixSpan};
use seqhide::prelude::*;

fn main() {
    // Session logs: one page-visit sequence per user session.
    let mut db = SequenceDb::parse(
        "home pricing compare checkout\n\
         home compare pricing checkout\n\
         home blog compare pricing\n\
         compare pricing faq checkout\n\
         home pricing blog\n\
         blog home compare faq pricing\n\
         home compare pricing\n\
         pricing compare home\n\
         faq blog home\n\
         compare blog blog pricing checkout\n",
    );

    // Sensitive: users who jump from the comparison page to pricing within
    // at most one intervening click — a funnel the marketing team will not
    // publish. (Loose occurrences with long detours are not sensitive.)
    let path = Sequence::parse("compare pricing", db.alphabet_mut());
    let pattern =
        SensitivePattern::new(path.clone(), ConstraintSet::uniform_gap(Gap::bounded(0, 1)))
            .unwrap();
    let sensitive = SensitiveSet::from_patterns(vec![pattern.clone()]);
    println!(
        "sensitive: {} — constrained support {} (unconstrained would be {})",
        pattern.render(db.alphabet()),
        seqhide::matching::support_of_pattern(&db, &pattern),
        support(&db, &path),
    );

    // Allow at most ψ = 1 disclosing session in the release.
    let before = db.clone();
    let report = Sanitizer::hh(1).run(&mut db, &sensitive);
    println!(
        "HH(ψ=1): {} marks in {} sessions; residual support {}",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports[0]
    );

    // Release option 1: delete the marks. Deletion shifts clicks together,
    // which can re-create *gap-constrained* occurrences — use the safe
    // variant, which re-verifies.
    let (deleted, del_report) = delete_markers_safe(&db, &sensitive, 1, &Sanitizer::hh(1));
    println!(
        "delete-Δ release: {} rounds, verified hidden = {}",
        del_report.rounds,
        verify_hidden(&deleted, &sensitive, 1).hidden
    );

    // Release option 2: replace marks with plausible pages.
    let mut replaced = db.clone();
    let rep = replace_markers(&mut replaced, &sensitive, 1);
    println!(
        "replace-Δ release: {} replaced, {} kept as missing values",
        rep.replaced, rep.kept
    );

    // Audit what each release costs the analyst, at σ = 3.
    let cfg = MinerConfig::new(3);
    let f0 = PrefixSpan::mine(&before, &cfg).len();
    for (name, released) in [("delete-Δ", &deleted), ("replace-Δ", &replaced)] {
        let f1 = PrefixSpan::mine(released, &cfg).len();
        println!("{name}: |F(D,3)| {f0} → {f1}");
    }

    println!("\nreplace-Δ release:");
    print!("{}", replaced.to_text());
}
