//! The paper's motivating scenario: hiding sensitive movement corridors
//! from a trajectory database before publication (§1, §7.3, §6).
//!
//! Reconstructs the TRUCKS-like dataset (273 trajectories on a 10×10 grid),
//! runs all four algorithms of the paper at several disclosure thresholds,
//! and prints an M1/M2/M3 comparison.
//!
//! ```sh
//! cargo run --release --example trajectory_hiding
//! ```

use seqhide::core::metrics;
use seqhide::core::Sanitizer;
use seqhide::data::trucks_like;

fn main() {
    let dataset = trucks_like(42);
    let stats = dataset.db.stats();
    println!(
        "{}: |D| = {}, avg {:.1} cells/trajectory, |Σ| = {}",
        dataset.name, stats.len, stats.avg_len, stats.alphabet_len
    );
    for p in &dataset.sensitive {
        println!(
            "  sensitive corridor {} — support {}",
            p.render(dataset.db.alphabet()),
            seqhide::matching::support_of_pattern(&dataset.db, p)
        );
    }

    println!("\n ψ   alg    M1     M2     M3   (σ = max(ψ,8); random algs seed 0)");
    for psi in [0usize, 10, 20, 40] {
        // σ below ~8 makes F(D,σ) explode combinatorially on trajectory
        // data (shared corridors ⇒ exponentially many common subsequences),
        // so the measure floor follows the paper's sweep range.
        let sigma = psi.max(8);
        for (name, sanitizer) in [
            ("HH", Sanitizer::hh(psi)),
            ("HR", Sanitizer::hr(psi)),
            ("RH", Sanitizer::rh(psi)),
            ("RR", Sanitizer::rr(psi)),
        ] {
            let mut db = dataset.db.clone();
            let report = sanitizer.with_seed(0).run(&mut db, &dataset.sensitive);
            assert!(report.hidden);
            let d = metrics::distortion(&dataset.db, &db, sigma);
            println!(
                "{psi:3}   {name}   {m1:4}  {m2:.3}  {m3:.3}",
                m1 = d.m1,
                m2 = d.m2,
                m3 = d.m3
            );
        }
        println!();
    }

    // Spatio-temporal angle (§7.3): the same corridors expressed with a
    // max-window occurrence constraint — "passes X6Y3 then X7Y2 within a
    // 3-cell window" — need fewer marks to hide.
    use seqhide::matching::ConstraintSet;
    let constrained = dataset
        .sensitive
        .with_constraints(&ConstraintSet::with_max_window(3))
        .unwrap();
    let mut db = dataset.db.clone();
    let report = Sanitizer::hh(0).run(&mut db, &constrained);
    println!(
        "window≤3 variant: {} marks vs {} unconstrained — constraints cut distortion",
        report.marks_introduced,
        {
            let mut db2 = dataset.db.clone();
            Sanitizer::hh(0)
                .run(&mut db2, &dataset.sensitive)
                .marks_introduced
        }
    );
}
