//! Spatio-temporal hiding (§7.3): sanitizing raw trajectories — no
//! pre-discretization — under a background-knowledge plausibility model.
//!
//! A fleet's GPS traces must be published without revealing visits to a
//! clinic district followed by a pharmacy district within an hour. The
//! sanitizer prefers *displacing* samples just outside the sensitive
//! regions over *suppressing* them, and every edit is checked against a
//! maximum-speed model so the release stays physically plausible.
//!
//! ```sh
//! cargo run --release --example spatiotemporal_hiding
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seqhide::data::{wander, waypoint_trajectory};
use seqhide::st::{sanitize_st_db, st_supports, PlausibilityModel, Region, StPattern, Trajectory};

fn to_trajectory(points: Vec<(f64, f64)>) -> Trajectory {
    // one sample per minute
    Trajectory::from_triples(
        points
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| (x, y, i as u64)),
    )
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let clinic = Region::rect(0.30, 0.60, 0.45, 0.75);
    let pharmacy = Region::rect(0.55, 0.60, 0.70, 0.72);

    // Fleet traces: 12 that run clinic → pharmacy, 28 background trips.
    let mut db: Vec<Trajectory> = Vec::new();
    for _ in 0..12 {
        let wp = vec![
            (rng.random::<f64>(), rng.random::<f64>() * 0.3),
            clinic.center(),
            pharmacy.center(),
            (rng.random::<f64>(), rng.random::<f64>()),
        ];
        db.push(to_trajectory(waypoint_trajectory(&mut rng, &wp, 24, 0.004)));
    }
    for _ in 0..28 {
        let start = (rng.random::<f64>(), rng.random::<f64>() * 0.4);
        db.push(to_trajectory(wander(&mut rng, start, 40, 0.02)));
    }

    // Sensitive: clinic then pharmacy within 60 minutes.
    let pattern = StPattern::new(vec![clinic, pharmacy]).with_max_window(60);
    let supporters = db.iter().filter(|t| st_supports(t, &pattern)).count();
    println!(
        "clinic→pharmacy (≤ 60 min) supporters: {supporters} of {}",
        db.len()
    );

    // Background knowledge: nothing moves faster than 0.08 units/minute.
    let model = PlausibilityModel::new(0.08);
    let plausible_before = db.iter().filter(|t| model.check(t)).count();

    let report = sanitize_st_db(&mut db, std::slice::from_ref(&pattern), 2, &model);
    println!(
        "sanitized: {} displaced (total {:.3} units), {} suppressed, across {} trajectories",
        report.displaced,
        report.displacement_distance,
        report.suppressed,
        report.trajectories_sanitized
    );
    println!(
        "residual support: {} (ψ = 2); hidden = {}",
        report.residual_supports[0], report.hidden
    );
    assert!(report.hidden);

    let plausible_after = db.iter().filter(|t| model.check(t)).count();
    println!(
        "plausibility: {plausible_before}/{} before → {plausible_after}/{} after \
         ({} forced violations)",
        db.len(),
        db.len(),
        report.plausibility_violations
    );
    println!(
        "\nthe release keeps every trajectory's sample count and timestamps; \
         only {} of {} total samples were touched",
        report.displaced + report.suppressed,
        db.iter().map(Trajectory::len).sum::<usize>()
    );
}
