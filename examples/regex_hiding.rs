//! Regular-expression sensitive patterns — the §8 future-work extension.
//!
//! The paper's patterns are one fixed symbol per step; real policies often
//! need disjunction ("either exit of the depot") or repetition ("one or
//! more detours"). This example hides a regex corridor policy from the
//! TRUCKS-like trajectory data and compares it with hiding the equivalent
//! plain patterns one by one.
//!
//! ```sh
//! cargo run --release --example regex_hiding
//! ```

use seqhide::core::Sanitizer;
use seqhide::data::trucks_like;
use seqhide::matching::SensitiveSet;
use seqhide::prelude::*;
use seqhide::re::{sanitize_regex_db, supports_re, ReLocalStrategy, RegexPattern};

fn main() {
    let dataset = trucks_like(42);
    let mut db = dataset.db.clone();

    // Policy: trips through cell X6Y3 that exit through EITHER X7Y2 or
    // X7Y3 are sensitive — one regex instead of two plain patterns.
    let policy = "X6Y3 (X7Y2 | X7Y3)";
    let re = RegexPattern::compile(policy, db.alphabet_mut()).unwrap();
    let supporters = db
        .sequences()
        .iter()
        .filter(|t| supports_re(t, &re))
        .count();
    println!(
        "policy: {policy}\nsupporting trajectories: {supporters} of {}",
        db.len()
    );

    let report = sanitize_regex_db(
        &mut db,
        std::slice::from_ref(&re),
        0,
        ReLocalStrategy::Heuristic,
        0,
    );
    println!(
        "regex HH: {} marks in {} trajectories; hidden = {}",
        report.marks_introduced, report.sequences_sanitized, report.hidden
    );
    assert!(report.hidden);
    assert_eq!(
        db.sequences()
            .iter()
            .filter(|t| supports_re(t, &re))
            .count(),
        0
    );

    // Equivalent plain-pattern formulation: hide both expansions with the
    // paper's base algorithm — same semantics, so the costs should agree.
    let mut db2 = dataset.db.clone();
    let s1 = Sequence::parse("X6Y3 X7Y2", db2.alphabet_mut());
    let s2 = Sequence::parse("X6Y3 X7Y3", db2.alphabet_mut());
    let sh = SensitiveSet::new(vec![s1, s2]);
    let plain = Sanitizer::hh(0).run(&mut db2, &sh);
    println!(
        "plain HH (two expanded patterns): {} marks in {} trajectories",
        plain.marks_introduced, plain.sequences_sanitized
    );

    // A policy a plain pattern cannot express: two or more consecutive
    // stops inside the depot row (any of X4Y3, X5Y3, X6Y3).
    let mut db3 = dataset.db.clone();
    let loiter =
        RegexPattern::compile("[X4Y3 X5Y3 X6Y3] [X4Y3 X5Y3 X6Y3]+", db3.alphabet_mut()).unwrap();
    let supporters = db3
        .sequences()
        .iter()
        .filter(|t| supports_re(t, &loiter))
        .count();
    let report = sanitize_regex_db(
        &mut db3,
        std::slice::from_ref(&loiter),
        5,
        ReLocalStrategy::Heuristic,
        0,
    );
    println!(
        "\nloitering policy ([row]+): {supporters} supporters → ψ=5 leaves {}; {} marks",
        report.residual_supports[0], report.marks_introduced
    );
    assert!(report.hidden);
}
