//! Classical sequential patterns (§7.1): hiding an itemset-sequence
//! pattern from market-basket histories with the two-level hierarchical
//! heuristic.
//!
//! Each customer history is a sequence of *baskets* (itemsets); a pattern
//! element matches a basket by set inclusion, and sanitization marks
//! individual items — first picking the basket position with the paper's
//! δ heuristic, then the items inside it that break the most matchings.
//!
//! ```sh
//! cargo run --example itemset_baskets
//! ```

use seqhide::core::itemset::sanitize_itemset_db;
use seqhide::core::LocalStrategy;
use seqhide::matching::itemset::{support_itemset, ItemsetPattern};
use seqhide::types::{Alphabet, ItemsetSequence};

fn main() {
    let mut sigma = Alphabet::new();
    let mut item = |name: &str| sigma.intern(name).id();
    let (test_kit, vitamins, baby_food, diapers) = (
        item("pregnancy-test"),
        item("prenatal-vitamins"),
        item("baby-food"),
        item("diapers"),
    );
    let (bread, milk, beer) = (item("bread"), item("milk"), item("beer"));

    // Customer purchase histories, one basket per shopping trip.
    let mut db: Vec<ItemsetSequence> = vec![
        ItemsetSequence::from_ids([vec![test_kit, bread], vec![vitamins, milk], vec![baby_food]]),
        ItemsetSequence::from_ids([vec![bread, milk], vec![test_kit], vec![vitamins, diapers]]),
        ItemsetSequence::from_ids([vec![test_kit], vec![milk], vec![vitamins]]),
        ItemsetSequence::from_ids([vec![beer, bread], vec![milk, bread]]),
        ItemsetSequence::from_ids([vec![vitamins], vec![test_kit]]), // wrong order: not a supporter
        ItemsetSequence::from_ids([vec![bread], vec![beer, milk], vec![bread]]),
    ];

    let original = db.clone();

    // Sensitive: a purchase of a pregnancy test followed by prenatal
    // vitamins — inference of a medical condition (the paper's §1 privacy
    // threat, in basket form).
    let pattern =
        ItemsetPattern::unconstrained(ItemsetSequence::from_ids([vec![test_kit], vec![vitamins]]))
            .unwrap();
    println!(
        "sensitive ⟨{{pregnancy-test}} {{prenatal-vitamins}}⟩ — support {} of {}",
        support_itemset(&db, &pattern),
        db.len()
    );

    let report = sanitize_itemset_db(
        &mut db,
        std::slice::from_ref(&pattern),
        0,
        LocalStrategy::Heuristic,
        7,
    );
    println!(
        "sanitized: {} item marks in {} histories; hidden = {}",
        report.marks_introduced, report.sequences_sanitized, report.hidden
    );
    assert!(report.hidden);
    assert_eq!(support_itemset(&db, &pattern), 0);

    println!("\nreleased histories (Δ = removed item):");
    for t in &db {
        println!("  {}", t.render(&sigma));
    }
    // Collateral check: everyday items survive untouched.
    let groceries =
        ItemsetPattern::unconstrained(ItemsetSequence::from_ids([vec![bread], vec![milk]]))
            .unwrap();
    println!(
        "\nnon-sensitive ⟨{{bread}} {{milk}}⟩ support preserved: {}",
        support_itemset(&db, &groceries)
    );

    // The itemset analogue of M2: how much of F(D, σ) survived?
    use seqhide::mine::{ItemsetMiner, MinerConfig};
    let before = ItemsetMiner::mine(&original, &MinerConfig::new(2).with_max_len(3));
    let after = ItemsetMiner::mine(&db, &MinerConfig::new(2).with_max_len(3));
    println!(
        "frequent itemset-sequence patterns (σ = 2, ≤ 3 items): {} → {} \
         (M2 = {:.3})",
        before.len(),
        after.len(),
        (before.len() - after.len()) as f64 / before.len() as f64
    );
}
