//! Quickstart: hide one sensitive sequential pattern from a toy database.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use seqhide::prelude::*;

fn main() {
    // A database of nine event sequences (say, anonymized page-visit logs).
    let mut db = SequenceDb::parse(
        "login search product cart checkout\n\
         login product search product\n\
         search product cart\n\
         login search cart checkout\n\
         product cart checkout\n\
         login search product\n\
         search search product cart\n\
         login checkout\n\
         cart product search\n",
    );
    println!(
        "D: {} sequences over {} symbols",
        db.len(),
        db.alphabet().len()
    );

    // The analyst considers ⟨search product cart⟩ sensitive: it exposes a
    // purchase-intent funnel they are not willing to publish.
    let funnel = Sequence::parse("search product cart", db.alphabet_mut());
    let sensitive = SensitiveSet::new(vec![funnel.clone()]);
    println!(
        "sensitive: {} — support {}",
        funnel.render(db.alphabet()),
        support(&db, &funnel)
    );

    // Hide it completely (disclosure threshold ψ = 0) with the paper's HH
    // algorithm: heuristic position choice × heuristic sequence choice.
    let before = db.clone();
    let report = Sanitizer::hh(0).run(&mut db, &sensitive);
    println!(
        "sanitized: {} marks across {} sequences (hidden = {})",
        report.marks_introduced, report.sequences_sanitized, report.hidden
    );
    assert!(report.hidden);
    assert_eq!(support(&db, &funnel), 0);

    // What did it cost? The paper's three distortion measures at σ = 2.
    let d = seqhide::core::metrics::distortion(&before, &db, 2);
    println!(
        "distortion: M1 = {} marks, M2 = {:.3}, M3 = {:.3} \
         (|F| {} → {})",
        d.m1, d.m2, d.m3, d.frequent_before, d.frequent_after
    );

    // The released database: Δ marks are missing values.
    println!("\nreleased D':");
    print!("{}", db.to_text());
}
