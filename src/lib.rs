//! # seqhide — hiding sensitive sequential patterns
//!
//! A production-quality Rust reproduction of *Hiding Sequences*
//! (Abul, Atzori, Bonchi, Giannotti — ICDE 2007): knowledge hiding for
//! sequential patterns by marking-based database sanitization.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — alphabets, sequences, databases, itemset and timed
//!   sequences;
//! * [`num`] — exact and saturating match counters;
//! * [`matching`] — embedding counting DPs, gap/window constraints,
//!   `δ(T[i])` computation (Lemmas 2–5, Theorem 2);
//! * [`mine`] — PrefixSpan and GSP frequent-sequence miners;
//! * [`core`] — the sanitization algorithms (HH/HR/RH/RR), distortion
//!   measures M1/M2/M3, verification, and every extension the paper
//!   discusses (§4 stage 2, §5 constraints, §7 itemsets/time tags, §8
//!   alternative heuristics and multiple thresholds);
//! * [`string`] — the substring-sanitization domain: Aho–Corasick
//!   occurrence counting and sanitize-by-edit (delete/substitute)
//!   distortion with the no-new-occurrence guarantee;
//! * [`data`] — trajectory simulator, grid discretization, and the
//!   TRUCKS-like / SYNTHETIC-like dataset generators;
//! * [`serve`] — the sanitization service: a threaded TCP server with a
//!   bounded job queue, backpressure, and live telemetry (`seqhide
//!   serve`; wire protocol in docs/SERVER.md).
//!
//! ## Quickstart
//!
//! ```
//! use seqhide::prelude::*;
//!
//! // A toy database and one sensitive pattern.
//! let mut db = SequenceDb::parse("a b c d\nb a c\nc a b c\n");
//! let pattern = Sequence::parse("a c", db.alphabet_mut());
//! let sensitive = SensitiveSet::new(vec![pattern.clone()]);
//!
//! // Hide it completely (ψ = 0) with the paper's HH algorithm.
//! let report = Sanitizer::hh(0).run(&mut db, &sensitive);
//!
//! assert_eq!(support(&db, &pattern), 0);     // hidden
//! assert!(report.marks_introduced > 0);      // at some cost (M1)
//! ```

#![forbid(unsafe_code)]

pub mod cli;

pub use seqhide_core as core;
pub use seqhide_data as data;
pub use seqhide_match as matching;
pub use seqhide_mine as mine;
pub use seqhide_num as num;
pub use seqhide_re as re;
pub use seqhide_serve as serve;
pub use seqhide_st as st;
pub use seqhide_string as string;
pub use seqhide_types as types;

/// One-stop imports for typical use.
pub mod prelude {
    pub use seqhide_core::{
        DisclosureThresholds, GlobalStrategy, HidingProblem, LocalStrategy, SanitizeReport,
        Sanitizer,
    };
    pub use seqhide_match::{support, ConstraintSet, SensitiveSet};
    pub use seqhide_mine::{MinerConfig, PrefixSpan};
    pub use seqhide_types::{Alphabet, Sequence, SequenceDb, Symbol};
}
