//! The `seqhide` command-line interface.
//!
//! Subcommands (see `seqhide help`):
//!
//! * `stats`  — summarise a sequence database;
//! * `mine`   — list frequent patterns (`F(D, σ)`);
//! * `hide`   — sanitize a database against sensitive patterns;
//! * `verify` — check the hiding requirement on a released database;
//! * `gen`    — emit the calibrated TRUCKS-like / SYNTHETIC-like datasets.
//!
//! The implementation is a plain function from arguments to output text so
//! the whole surface is exercised by integration tests without spawning
//! processes; `src/bin/seqhide.rs` is a three-line wrapper.

use std::collections::HashMap;
use std::fmt;

use seqhide_core::{EngineMode, GlobalStrategy, LocalStrategy, Sanitizer};
use seqhide_data::{synthetic_like, trucks_like};
use seqhide_match::{ConstraintSet, Gap, SensitivePattern, SensitiveSet};
use seqhide_mine::{Gsp, MinerConfig, PrefixSpan};
use seqhide_obs as obs;
use seqhide_re::{sanitize_regex_db, ReLocalStrategy, RegexPattern};
use seqhide_types::{Sequence, SequenceDb};

/// CLI failure: a message for stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// What one subcommand accepts: `valued` flags consume the next argument,
/// `boolean` flags stand alone. Unknown flags are rejected at parse time
/// with a "did you mean" suggestion, so a typo can't silently fall back to
/// a default.
struct FlagSpec {
    command: &'static str,
    valued: &'static [&'static str],
    boolean: &'static [&'static str],
}

const SPECS: &[FlagSpec] = &[
    FlagSpec {
        command: "stats",
        valued: &["db", "mode"],
        boolean: &[],
    },
    FlagSpec {
        command: "mine",
        valued: &[
            "db",
            "sigma",
            "mode",
            "miner",
            "max-len",
            "top",
            "min-gap",
            "max-gap",
            "max-window",
            "metrics-out",
        ],
        boolean: &["progress"],
    },
    FlagSpec {
        command: "hide",
        valued: &[
            "db",
            "psi",
            "pattern",
            "regex",
            "mode",
            "algorithm",
            "seed",
            "min-gap",
            "max-gap",
            "max-window",
            "engine",
            "threads",
            "post",
            "out",
            "batch-size",
            "metrics-out",
        ],
        boolean: &["exact", "report", "progress", "stream"],
    },
    FlagSpec {
        command: "verify",
        valued: &["db", "psi", "pattern", "min-gap", "max-gap", "max-window"],
        boolean: &[],
    },
    FlagSpec {
        command: "attack",
        valued: &["original", "released", "train", "pattern"],
        boolean: &[],
    },
    FlagSpec {
        command: "gen",
        valued: &["dataset", "seed", "out"],
        boolean: &[],
    },
];

impl FlagSpec {
    fn for_command(command: &str) -> Option<&'static FlagSpec> {
        SPECS.iter().find(|s| s.command == command)
    }

    fn knows(&self, name: &str) -> Option<bool> {
        if self.boolean.contains(&name) {
            Some(true)
        } else if self.valued.contains(&name) {
            Some(false)
        } else {
            None
        }
    }

    fn unknown_flag_error(&self, name: &str) -> CliError {
        let all = self.valued.iter().chain(self.boolean);
        let best = all
            .clone()
            .map(|cand| (levenshtein(name, cand), *cand))
            .min()
            .filter(|&(d, cand)| d <= 2 || cand.starts_with(name))
            .map(|(_, cand)| cand);
        match best {
            Some(cand) => err(format!(
                "unknown flag --{name} for '{}' (did you mean --{cand}?)",
                self.command
            )),
            None => {
                let valid: Vec<String> = all.map(|f| format!("--{f}")).collect();
                err(format!(
                    "unknown flag --{name} for '{}'; valid flags: {}",
                    self.command,
                    valid.join(", ")
                ))
            }
        }
    }
}

/// Edit distance for the "did you mean" suggestion.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Parsed `--flag value` / `--flag` arguments; repeated flags accumulate.
struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    fn parse(args: &[String], spec: &FlagSpec) -> Result<Flags, CliError> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(err(format!(
                    "unexpected argument '{arg}' (expected --flag)"
                )));
            };
            let is_boolean = spec
                .knows(name)
                .ok_or_else(|| spec.unknown_flag_error(name))?;
            if is_boolean {
                values
                    .entry(name.to_string())
                    .or_default()
                    .push(String::new());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("--{name} needs a value")))?;
                values
                    .entry(name.to_string())
                    .or_default()
                    .push(value.clone());
                i += 2;
            }
        }
        Ok(Flags { values })
    }

    fn one(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn all(&self, name: &str) -> &[String] {
        self.values.get(name).map_or(&[], Vec::as_slice)
    }

    fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.one(name)
            .ok_or_else(|| err(format!("missing required --{name}")))
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.one(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: '{v}' is not a number"))),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.one(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: '{v}' is not a number"))),
        }
    }
}

const HELP: &str = "\
seqhide — hiding sensitive sequential patterns (ICDE 2007 reproduction)

USAGE:
  seqhide stats  --db FILE [--mode plain|itemset|timed]
  seqhide mine   --db FILE --sigma N [--mode plain|itemset]
                 [--miner prefixspan|gsp] [--max-len L] [--top K]
                 [--min-gap G] [--max-gap G] [--max-window W]
                 [--metrics-out FILE] [--progress]
  seqhide hide   --db FILE --psi N (--pattern \"a b\")... [--regex \"a (b|c)+ d\"]...
                 [--mode plain|itemset|timed] [--algorithm hh|hr|rh|rr]
                 [--seed S] [--exact] [--min-gap G] [--max-gap G] [--max-window W]
                 [--engine incremental|scratch] [--threads N]
                 [--post keep|delete|replace] [--out FILE] [--report]
                 [--stream] [--batch-size N]
                 [--metrics-out FILE] [--progress]
  seqhide verify --db FILE --psi N (--pattern \"a b\")...
  seqhide attack --original FILE --released FILE [--train FILE]
                 (--pattern \"a b\")...
  seqhide gen    --dataset trucks|synthetic [--seed S] --out FILE
  seqhide help

FORMATS (one sequence per line; '#' comments; marks render as Δ):
  plain    whitespace-separated symbols:      login search checkout
  itemset  comma-joined items per element:    bread,milk beer
  timed    symbol@tick events:                login@0 search@15
In itemset mode --pattern uses the itemset syntax; in timed mode
--min-gap/--max-gap/--max-window are elapsed ticks, not index distances.

STREAMING:
  --stream            two-pass bounded-memory pipeline: never holds more
                      than --batch-size sequences resident; output is
                      byte-identical to the in-memory path on the same
                      seed. Plain mode + --pattern only; --post keep only.
  --batch-size N      sequences resident per pass-2 batch (default 1024)

TELEMETRY:
  --metrics-out FILE  write the run's span/counter/histogram snapshot as
                      JSON (schema in docs/OBSERVABILITY.md)
  --progress          print throttled progress lines to stderr
";

fn load_db(flags: &Flags) -> Result<SequenceDb, CliError> {
    let path = flags.required("db")?;
    seqhide_data::io::read_db(path).map_err(|e| err(format!("cannot read {path}: {e}")))
}

fn constraints(flags: &Flags) -> Result<ConstraintSet, CliError> {
    let min = flags.usize_or("min-gap", 0)?;
    let max = match flags.one("max-gap") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| err("--max-gap: not a number"))?),
    };
    if let Some(max) = max {
        if max < min {
            return Err(err("--max-gap must be ≥ --min-gap"));
        }
    }
    let mut cs = if min == 0 && max.is_none() {
        ConstraintSet::none()
    } else {
        ConstraintSet::uniform_gap(Gap { min, max })
    };
    if let Some(w) = flags.one("max-window") {
        cs.max_window = Some(w.parse().map_err(|_| err("--max-window: not a number"))?);
    }
    Ok(cs)
}

fn sensitive_set(flags: &Flags, db: &mut SequenceDb) -> Result<SensitiveSet, CliError> {
    let cs = constraints(flags)?;
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, db.alphabet_mut());
        patterns.push(
            SensitivePattern::new(seq, cs.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    Ok(SensitiveSet::from_patterns(patterns))
}

fn mode(flags: &Flags) -> Result<&str, CliError> {
    match flags.one("mode").unwrap_or("plain") {
        m @ ("plain" | "itemset" | "timed") => Ok(m),
        other => Err(err(format!("unknown mode '{other}' (plain|itemset|timed)"))),
    }
}

fn read_text(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("db")?;
    std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
}

fn cmd_stats(flags: &Flags) -> Result<String, CliError> {
    match mode(flags)? {
        "itemset" => {
            let (alphabet, db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
            let elements: usize = db.iter().map(seqhide_types::ItemsetSequence::len).sum();
            let items: usize = db
                .iter()
                .flat_map(|t| t.elements().iter())
                .map(seqhide_types::Itemset::live_len)
                .sum();
            let marks: usize = db
                .iter()
                .map(seqhide_types::ItemsetSequence::mark_count)
                .sum();
            Ok(format!(
                "sequences:      {}\nelements total: {elements}\nitems total:    {items}\nalphabet |Σ|:   {}\nmarks (Δ):      {marks}\n",
                db.len(),
                alphabet.len()
            ))
        }
        "timed" => {
            let (alphabet, db) = seqhide_data::io::parse_timed_db(&read_text(flags)?)
                .map_err(|e| err(e.to_string()))?;
            let events: usize = db.iter().map(seqhide_types::TimedSequence::len).sum();
            let marks: usize = db
                .iter()
                .map(seqhide_types::TimedSequence::mark_count)
                .sum();
            Ok(format!(
                "sequences:      {}\nevents total:   {events}\nalphabet |Σ|:   {}\nmarks (Δ):      {marks}\n",
                db.len(),
                alphabet.len()
            ))
        }
        _ => {
            let db = load_db(flags)?;
            let s = db.stats();
            Ok(format!(
                "sequences:      {}\nsymbols total:  {}\navg length:     {:.2}\nmax length:     {}\nalphabet |Σ|:   {}\nmarks (Δ):      {}\n",
                s.len, s.total_symbols, s.avg_len, s.max_len, s.alphabet_len, s.marks
            ))
        }
    }
}

fn cmd_mine(flags: &Flags) -> Result<String, CliError> {
    let sigma = flags
        .required("sigma")?
        .parse::<usize>()
        .map_err(|_| err("--sigma: not a number"))?;
    if sigma == 0 {
        return Err(err("--sigma must be at least 1"));
    }
    let mut cfg = MinerConfig::new(sigma);
    if let Some(l) = flags.one("max-len") {
        cfg = cfg.with_max_len(l.parse().map_err(|_| err("--max-len: not a number"))?);
    }
    if mode(flags)? == "itemset" {
        let (alphabet, db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
        let result = seqhide_mine::ItemsetMiner::mine(&db, &cfg);
        let mut rows = result.patterns.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.support));
        let top = flags.usize_or("top", rows.len())?;
        let mut out = format!(
            "frequent itemset patterns (σ = {sigma}): {}{}\n",
            rows.len(),
            if result.truncated { " [TRUNCATED]" } else { "" }
        );
        for fp in rows.iter().take(top) {
            out.push_str(&format!(
                "{:>6}  {}\n",
                fp.support,
                fp.seq.render(&alphabet)
            ));
        }
        return Ok(out);
    }
    if mode(flags)? == "timed" {
        return Err(err(
            "mining timed databases is not supported; project the symbols",
        ));
    }
    let db = load_db(flags)?;
    let result = match flags.one("miner").unwrap_or("prefixspan") {
        "prefixspan" => PrefixSpan::mine(&db, &cfg),
        "gsp" => Gsp::mine(&db, &cfg.with_constraints(constraints(flags)?)),
        other => return Err(err(format!("unknown miner '{other}'"))),
    };
    let mut rows = result.patterns.clone();
    rows.sort_by(|a, b| b.support.cmp(&a.support).then(a.seq.cmp(&b.seq)));
    let top = flags.usize_or("top", rows.len())?;
    let mut out = format!(
        "frequent patterns (σ = {sigma}): {}{}\n",
        rows.len(),
        if result.truncated { " [TRUNCATED]" } else { "" }
    );
    for fp in rows.iter().take(top) {
        out.push_str(&format!(
            "{:>6}  {}\n",
            fp.support,
            fp.seq.render(db.alphabet())
        ));
    }
    Ok(out)
}

fn cmd_hide_itemset(flags: &Flags, psi: usize) -> Result<String, CliError> {
    use seqhide_core::itemset::sanitize_itemset_db;
    use seqhide_match::itemset::ItemsetPattern;
    let (mut alphabet, mut db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        // parse the pattern's itemset syntax against the database alphabet
        let elements: Vec<seqhide_types::Itemset> = text
            .split_whitespace()
            .map(|elem| {
                seqhide_types::Itemset::new(
                    elem.split(',')
                        .filter(|w| !w.is_empty())
                        .map(|w| alphabet.intern(w))
                        .collect(),
                )
            })
            .collect();
        let seq = seqhide_types::ItemsetSequence::new(elements);
        patterns.push(
            ItemsetPattern::new(seq, constraints(flags)?)
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    if patterns.is_empty() {
        return Err(err(
            "nothing to hide: give --pattern (itemset syntax: a,b c)",
        ));
    }
    let strategy = match flags.one("algorithm").unwrap_or("hh") {
        "hh" | "hr" => LocalStrategy::Heuristic,
        "rh" | "rr" => LocalStrategy::Random,
        other => return Err(err(format!("unknown algorithm '{other}' (hh|hr|rh|rr)"))),
    };
    let report = sanitize_itemset_db(&mut db, &patterns, psi, strategy, flags.u64_or("seed", 0)?);
    if !report.hidden {
        return Err(err("internal: itemset sanitizer failed to hide"));
    }
    let mut out = format!(
        "itemset patterns: {} item marks in {} sequences; residual supports {:?}\n",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports
    );
    let text = seqhide_data::io::itemset_db_to_text(&alphabet, &db);
    if let Some(path) = flags.one("out") {
        std::fs::write(path, &text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

fn cmd_hide_timed(flags: &Flags, psi: usize) -> Result<String, CliError> {
    use seqhide_core::timed::{sanitize_timed_db, TimeConstraints, TimeGap, TimedPattern};
    let (mut alphabet, mut db) =
        seqhide_data::io::parse_timed_db(&read_text(flags)?).map_err(|e| err(e.to_string()))?;
    let mut tc = TimeConstraints::none();
    let min = flags.u64_or("min-gap", 0)?;
    let max = match flags.one("max-gap") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| err("--max-gap: not a number"))?),
    };
    if min > 0 || max.is_some() {
        tc = TimeConstraints::uniform_gap(TimeGap { min, max });
    }
    if let Some(w) = flags.one("max-window") {
        tc.max_window = Some(w.parse().map_err(|_| err("--max-window: not a number"))?);
    }
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, &mut alphabet);
        patterns.push(
            TimedPattern::new(seq, tc.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    if patterns.is_empty() {
        return Err(err(
            "nothing to hide: give --pattern (plain symbols; gaps in ticks)",
        ));
    }
    let strategy = match flags.one("algorithm").unwrap_or("hh") {
        "hh" | "hr" => LocalStrategy::Heuristic,
        "rh" | "rr" => LocalStrategy::Random,
        other => return Err(err(format!("unknown algorithm '{other}' (hh|hr|rh|rr)"))),
    };
    let report = sanitize_timed_db(&mut db, &patterns, psi, strategy, flags.u64_or("seed", 0)?);
    if !report.hidden {
        return Err(err("internal: timed sanitizer failed to hide"));
    }
    let mut out = format!(
        "timed patterns: {} event marks in {} sequences; residual supports {:?}\n",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports
    );
    let text = seqhide_data::io::timed_db_to_text(&alphabet, &db);
    if let Some(path) = flags.one("out") {
        std::fs::write(path, &text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

/// The `hide` configuration shared by the in-memory and streaming paths.
struct HideConfig {
    psi: usize,
    seed: u64,
    engine: EngineMode,
    threads: usize,
    local: LocalStrategy,
    global: GlobalStrategy,
}

impl HideConfig {
    fn parse(flags: &Flags) -> Result<Self, CliError> {
        let psi = flags
            .required("psi")?
            .parse::<usize>()
            .map_err(|_| err("--psi: not a number"))?;
        let seed = flags.u64_or("seed", 0)?;
        let engine = match flags.one("engine") {
            None => EngineMode::default(),
            Some(v) => EngineMode::parse(v)
                .ok_or_else(|| err(format!("unknown engine '{v}' (incremental|scratch)")))?,
        };
        let threads = flags.usize_or("threads", 1)?;
        let (local, global) = match flags.one("algorithm").unwrap_or("hh") {
            "hh" => (LocalStrategy::Heuristic, GlobalStrategy::Heuristic),
            "hr" => (LocalStrategy::Heuristic, GlobalStrategy::Random),
            "rh" => (LocalStrategy::Random, GlobalStrategy::Heuristic),
            "rr" => (LocalStrategy::Random, GlobalStrategy::Random),
            other => return Err(err(format!("unknown algorithm '{other}' (hh|hr|rh|rr)"))),
        };
        Ok(HideConfig {
            psi,
            seed,
            engine,
            threads,
            local,
            global,
        })
    }

    fn sanitizer(&self, exact: bool) -> Sanitizer {
        Sanitizer::new(self.local, self.global, self.psi)
            .with_seed(self.seed)
            .with_exact_counts(exact)
            .with_engine(self.engine)
            .with_threads(self.threads)
    }
}

/// `hide --stream`: the two-pass bounded-memory pipeline
/// ([`seqhide_core::stream`]). Pass 1 scans for supporters, pass 2
/// re-streams in `--batch-size` batches and writes incrementally — the
/// database is never fully resident. Same seed ⇒ byte-identical output to
/// the in-memory path (the parity is pinned by tests/stream.rs).
fn cmd_hide_stream(flags: &Flags, cfg: &HideConfig) -> Result<String, CliError> {
    use std::path::Path;
    if !flags.all("regex").is_empty() {
        return Err(err(
            "--stream supports plain --pattern hiding only (drop --regex or --stream)",
        ));
    }
    if flags.one("post").unwrap_or("keep") != "keep" {
        return Err(err(
            "--stream writes incrementally; --post delete/replace need the full database in memory",
        ));
    }
    let db_path = flags.required("db")?;
    let cs = constraints(flags)?;
    let mut alphabet = seqhide_types::Alphabet::new();
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, &mut alphabet);
        patterns.push(
            SensitivePattern::new(seq, cs.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    let sh = SensitiveSet::from_patterns(patterns);
    if sh.is_empty() {
        return Err(err("nothing to hide: give --pattern"));
    }
    let batch_size = flags.usize_or("batch-size", 1024)?;
    let sanitizer = cfg.sanitizer(flags.has("exact"));
    let stream_io = |e: std::io::Error| err(format!("cannot stream {db_path}: {e}"));

    let mut out = String::new();
    let report = if let Some(out_path) = flags.one("out") {
        let shard_dir = Path::new(out_path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        let mut sink = seqhide_data::ShardWriter::new(shard_dir, 8 << 20);
        let sr = sanitizer
            .run_streaming(
                Path::new(db_path),
                &mut alphabet,
                &sh,
                batch_size,
                &mut sink,
            )
            .map_err(stream_io)?;
        sink.finish_to_path(out_path)
            .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
        sr
    } else {
        let mut buf = Vec::new();
        let sr = sanitizer
            .run_streaming(Path::new(db_path), &mut alphabet, &sh, batch_size, &mut buf)
            .map_err(stream_io)?;
        out.push_str(&String::from_utf8(buf).expect("release text is UTF-8"));
        sr
    };
    let mut head = format!(
        "plain patterns: {} marks in {} sequences; residual supports {:?}\n",
        report.report.marks_introduced,
        report.report.sequences_sanitized,
        report.report.residual_supports
    );
    head.push_str(&format!(
        "stream: {} sequences in {} batch(es) of ≤ {batch_size}; peak batch {} B\n",
        report.sequences_total, report.batches, report.peak_batch_bytes
    ));
    if flags.has("report") {
        head.push_str(&format!(
            "engine: {} cell repairs, {} fallback recounts\n",
            report.report.engine_repairs, report.report.fallback_recounts
        ));
    }
    if !report.report.hidden {
        return Err(err("internal: sanitizer failed to hide plain patterns"));
    }
    head.push_str(&format!(
        "total marks (M1): {}\n",
        report.report.marks_introduced
    ));
    if let Some(out_path) = flags.one("out") {
        head.push_str(&format!("wrote {out_path}\n"));
    }
    Ok(head + &out)
}

fn cmd_hide(flags: &Flags) -> Result<String, CliError> {
    let cfg = HideConfig::parse(flags)?;
    let psi = cfg.psi;
    if let m @ ("itemset" | "timed") = mode(flags)? {
        if flags.has("stream") {
            return Err(err(format!("--stream supports plain mode only, not {m}")));
        }
        return if m == "itemset" {
            cmd_hide_itemset(flags, psi)
        } else {
            cmd_hide_timed(flags, psi)
        };
    }
    if flags.has("stream") {
        return cmd_hide_stream(flags, &cfg);
    }
    let mut db = load_db(flags)?;
    let sh = sensitive_set(flags, &mut db)?;
    let regexes: Vec<RegexPattern> = flags
        .all("regex")
        .iter()
        .map(|text| {
            RegexPattern::compile(text, db.alphabet_mut())
                .map(|p| p.with_constraints(&constraints(flags).expect("validated")))
                .map_err(|e| err(format!("--regex '{text}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    if sh.is_empty() && regexes.is_empty() {
        return Err(err("nothing to hide: give --pattern and/or --regex"));
    }
    let seed = cfg.seed;
    let re_strategy = match cfg.local {
        LocalStrategy::Heuristic => ReLocalStrategy::Heuristic,
        LocalStrategy::Random => ReLocalStrategy::Random,
    };
    let mut out = String::new();
    let mut marks = 0;
    if !sh.is_empty() {
        let report = cfg.sanitizer(flags.has("exact")).run(&mut db, &sh);
        marks += report.marks_introduced;
        out.push_str(&format!(
            "plain patterns: {} marks in {} sequences; residual supports {:?}\n",
            report.marks_introduced, report.sequences_sanitized, report.residual_supports
        ));
        if flags.has("report") {
            out.push_str(&format!(
                "engine: {} cell repairs, {} fallback recounts\n",
                report.engine_repairs, report.fallback_recounts
            ));
        }
        if !report.hidden {
            return Err(err("internal: sanitizer failed to hide plain patterns"));
        }
    }
    if !regexes.is_empty() {
        let report = sanitize_regex_db(&mut db, &regexes, psi, re_strategy, seed);
        marks += report.marks_introduced;
        out.push_str(&format!(
            "regex patterns: {} marks in {} sequences; residual supports {:?}\n",
            report.marks_introduced, report.sequences_sanitized, report.residual_supports
        ));
        if !report.hidden {
            return Err(err("internal: sanitizer failed to hide regex patterns"));
        }
    }
    match flags.one("post").unwrap_or("keep") {
        "keep" => {}
        "delete" => {
            // Δ-deletion shrinks gaps, which can resurrect *any*
            // constrained matcher's occurrences — regex patterns included,
            // not just plain S_h. The hook re-verifies (and if needed
            // re-sanitizes) the regexes each round; it returns 0 once they
            // are hidden, so the loop ends with both families clean.
            let (released, dr) = seqhide_core::post::delete_markers_safe_with(
                &db,
                &sh,
                psi,
                &Sanitizer::new(cfg.local, cfg.global, psi),
                |cur| {
                    if regexes.is_empty() {
                        0
                    } else {
                        sanitize_regex_db(cur, &regexes, psi, re_strategy, seed).marks_introduced
                    }
                },
            );
            db = released;
            out.push_str(&format!("post: deleted Δ ({} round(s))\n", dr.rounds));
        }
        "replace" => {
            let rep = seqhide_core::post::replace_markers(&mut db, &sh, seed);
            out.push_str(&format!(
                "post: replaced {} Δ, kept {}\n",
                rep.replaced, rep.kept
            ));
        }
        other => {
            return Err(err(format!(
                "unknown post strategy '{other}' (keep|delete|replace)"
            )))
        }
    }
    out.push_str(&format!("total marks (M1): {marks}\n"));
    if let Some(path) = flags.one("out") {
        seqhide_data::io::write_db(path, &db)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&db.to_text());
    }
    if flags.has("report") {
        let stats = db.stats();
        out.push_str(&format!(
            "released: {} sequences, {} residual Δ\n",
            stats.len, stats.marks
        ));
    }
    Ok(out)
}

fn cmd_verify(flags: &Flags) -> Result<String, CliError> {
    let mut db = load_db(flags)?;
    let psi = flags
        .required("psi")?
        .parse::<usize>()
        .map_err(|_| err("--psi: not a number"))?;
    let sh = sensitive_set(flags, &mut db)?;
    if sh.is_empty() {
        return Err(err("give at least one --pattern"));
    }
    let report = seqhide_core::verify_hidden(&db, &sh, psi);
    let mut out = String::new();
    for (p, sup) in sh.iter().zip(&report.supports) {
        out.push_str(&format!(
            "{}: support {} {} ψ = {}\n",
            p.render(db.alphabet()),
            sup,
            if *sup <= psi { "≤" } else { ">" },
            psi
        ));
    }
    out.push_str(if report.hidden {
        "HIDDEN\n"
    } else {
        "NOT HIDDEN\n"
    });
    if report.hidden {
        Ok(out)
    } else {
        Err(err(out.trim_end().to_string()))
    }
}

fn cmd_attack(flags: &Flags) -> Result<String, CliError> {
    use seqhide_core::attack::{evaluate_mark_inference, reconstruction_resupport, BigramModel};
    let read = |flag: &str| -> Result<String, CliError> {
        let path = flags.required(flag)?;
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
    };
    // Parse both against ONE alphabet so symbol ids line up.
    let mut original = SequenceDb::parse(&read("original")?);
    let released_text = read("released")?;
    let released = {
        let mut db = SequenceDb::new(original.alphabet().clone());
        for line in released_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            let seq = Sequence::parse(line, db.alphabet_mut());
            db.push(seq);
        }
        // keep the (possibly grown) alphabet consistent on both sides
        *original.alphabet_mut() = db.alphabet().clone();
        db
    };
    if original.len() != released.len() {
        return Err(err(format!(
            "databases do not align: {} vs {} sequences",
            original.len(),
            released.len()
        )));
    }
    let model = match flags.one("train") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            let mut train = SequenceDb::new(original.alphabet().clone());
            for line in text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
            {
                let seq = Sequence::parse(line, train.alphabet_mut());
                train.push(seq);
            }
            *original.alphabet_mut() = train.alphabet().clone();
            BigramModel::train(&train)
        }
        None => BigramModel::train(&released),
    };
    let inf = evaluate_mark_inference(&original, &released, &model);
    let mut out = format!(
        "mark-inference: {} marked slots — top-1 {} ({:.0}%), top-5 {} ({:.0}%), MRR {:.3}\n",
        inf.positions,
        inf.top1,
        if inf.positions > 0 {
            100.0 * inf.top1 as f64 / inf.positions as f64
        } else {
            0.0
        },
        inf.top5,
        if inf.positions > 0 {
            100.0 * inf.top5 as f64 / inf.positions as f64
        } else {
            0.0
        },
        inf.mrr,
    );
    let patterns = flags.all("pattern");
    if !patterns.is_empty() {
        let mut db_for_patterns = original.clone();
        let sh = SensitiveSet::new(
            patterns
                .iter()
                .map(|text| Sequence::parse(text, db_for_patterns.alphabet_mut()))
                .collect(),
        );
        let res = reconstruction_resupport(&db_for_patterns, &released, &sh, &model);
        out.push_str(&format!(
            "pattern re-support: original {} → release {} → reconstruction {}\n",
            res.original_support, res.released_support, res.reconstructed_support
        ));
        if res.reconstructed_support > res.released_support {
            out.push_str(
                "WARNING: the adversary resurrects hidden support; consider --post delete/replace\n",
            );
        }
    }
    Ok(out)
}

fn cmd_gen(flags: &Flags) -> Result<String, CliError> {
    let seed = flags.u64_or("seed", 42)?;
    let dataset = match flags.required("dataset")? {
        "trucks" => trucks_like(seed),
        "synthetic" => synthetic_like(seed),
        other => return Err(err(format!("unknown dataset '{other}' (trucks|synthetic)"))),
    };
    let path = flags.required("out")?;
    seqhide_data::io::write_db(path, &dataset.db)
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    let (supports, disj) = dataset.support_table();
    Ok(format!(
        "wrote {} ({} sequences) to {path}\nsensitive supports: {:?}, disjunction {}\n",
        dataset.name,
        dataset.db.len(),
        supports,
        disj
    ))
}

/// Runs the CLI on `args` (without the program name), returning stdout
/// text or an error message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(HELP.to_string());
    };
    let command = command.as_str();
    if matches!(command, "help" | "--help" | "-h") {
        return Ok(HELP.to_string());
    }
    let Some(spec) = FlagSpec::for_command(command) else {
        return Err(err(format!(
            "unknown command '{command}'; try 'seqhide help'"
        )));
    };
    let flags = Flags::parse(&args[1..], spec)?;
    if flags.has("progress") && !obs::is_enabled() {
        eprintln!("[seqhide] --progress: instrumentation compiled out (obs feature off)");
    }
    obs::progress::enable(flags.has("progress"));
    let before = obs::snapshot();
    let result = match command {
        "stats" => cmd_stats(&flags),
        "mine" => cmd_mine(&flags),
        "hide" => cmd_hide(&flags),
        "verify" => cmd_verify(&flags),
        "attack" => cmd_attack(&flags),
        "gen" => cmd_gen(&flags),
        _ => unreachable!("spec table covers every dispatched command"),
    };
    obs::progress::enable(false);
    let mut result = result?;
    if let Some(path) = flags.one("metrics-out") {
        let metrics = obs::snapshot().diff(&before);
        std::fs::write(path, metrics.to_json())
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        result.push_str(&format!("wrote metrics to {path}\n"));
    }
    Ok(result)
}
