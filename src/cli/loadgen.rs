//! `seqhide loadgen` — drive a running serve instance with concurrent
//! load and record `BENCH_serve.json`.
//!
//! A thin wrapper over [`seqhide_serve::loadgen`]: N client threads
//! issue a zipfian pattern/domain mix against `--addr` for
//! `--duration-secs`, latencies are histogrammed client-side, and the
//! merged report (throughput, p50/p95/p99, shed rate, drain time) is
//! written to `--out` (default `BENCH_serve.json`). `--shutdown` sends
//! a `shutdown` request after the run so scripted pipelines (CI's
//! serve-load-smoke job) can drain the server without a second tool.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use seqhide_serve::loadgen::{run, LoadgenOptions};

use super::flags::Flags;
use super::{err, CliError};

pub(crate) fn cmd_loadgen(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.required("addr")?.to_string();
    let clients = flags.usize_or("clients", 8)?;
    if clients == 0 {
        return Err(err("--clients must be ≥ 1"));
    }
    let duration_secs = flags.u64_or("duration-secs", 5)?;
    if duration_secs == 0 {
        return Err(err("--duration-secs must be ≥ 1"));
    }
    let db = match flags.one("db") {
        None => None,
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?,
        ),
    };
    let options = LoadgenOptions {
        addr,
        clients,
        duration: Duration::from_secs(duration_secs),
        psi: flags.usize_or("psi", 50)?,
        seed: flags.u64_or("seed", 0)?,
        db,
        sequences: flags.usize_or("sequences", 64)?,
        dataset: flags.one("dataset").map(str::to_string),
        delta_fraction: match flags.one("delta-fraction") {
            None => 0.0,
            Some(raw) => {
                let f: f64 = raw
                    .parse()
                    .map_err(|_| err(format!("--delta-fraction: '{raw}' is not a number")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(err("--delta-fraction must be within [0, 1]"));
                }
                f
            }
        },
        tenants: flags.usize_or("tenants", 0)?,
        hog_fraction: match flags.one("hog-fraction") {
            None => 0.0,
            Some(raw) => {
                let f: f64 = raw
                    .parse()
                    .map_err(|_| err(format!("--hog-fraction: '{raw}' is not a number")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(err("--hog-fraction must be within [0, 1]"));
                }
                f
            }
        },
    };
    if options.delta_fraction > 0.0 && options.dataset.is_none() {
        return Err(err(
            "--delta-fraction needs --dataset (deltas mutate a named dataset)",
        ));
    }
    if options.hog_fraction > 0.0 && options.tenants < 2 {
        return Err(err(
            "--hog-fraction needs --tenants ≥ 2 (one hog plus at least one light \
             tenant to be unfair to)",
        ));
    }
    if options.tenants > 0 {
        eprintln!(
            "[seqhide loadgen] multi-tenant mix: {} tenant(s), hog fraction {:.2} \
             (tokens t0..t{})",
            options.tenants,
            options.hog_fraction,
            options.tenants - 1
        );
    }
    eprintln!(
        "[seqhide loadgen] {} client(s) against {} for {}s",
        options.clients, options.addr, duration_secs
    );
    let report = run(&options).map_err(err)?;
    let out_path = flags.one("out").unwrap_or("BENCH_serve.json");
    std::fs::write(out_path, report.to_bench_json(&options))
        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    if flags.has("shutdown") {
        // A multi-tenant server with no default tenant refuses untagged
        // requests, so the shutdown rides on tenant 0's token.
        let token = (options.tenants > 0).then_some("t0");
        send_shutdown(&options.addr, token)?;
    }
    let delta_note = if report.delta_latency.count > 0 {
        format!(
            " ({} delta(s), p50 {}µs p99 {}µs)",
            report.delta_latency.count,
            report.delta_latency.quantile(0.50) / 1_000,
            report.delta_latency.quantile(0.99) / 1_000,
        )
    } else {
        String::new()
    };
    let fairness_note = if report.tenants.is_empty() {
        String::new()
    } else {
        format!(" (Jain fairness {:.4})", report.jain_fairness)
    };
    Ok(format!(
        "loadgen: {} request(s) in {:.1}s — {:.1} req/s, p50 {}µs p95 {}µs p99 {}µs, \
         shed rate {:.4}, drain {}ms{delta_note}{fairness_note}; wrote {out_path}\n",
        report.requests,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.latency.quantile(0.50) / 1_000,
        report.latency.quantile(0.95) / 1_000,
        report.latency.quantile(0.99) / 1_000,
        report.shed_rate(),
        report.drain.as_millis(),
    ))
}

/// Sends a `shutdown` request and waits for the acknowledgement, so the
/// caller can rely on the server having begun its drain. An error
/// response (e.g. an unresolved tenant token) is a hard failure — the
/// server would otherwise keep running after "successful" shutdown.
fn send_shutdown(addr: &str, tenant: Option<&str>) -> Result<(), CliError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| err(format!("shutdown: connect {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| err(format!("shutdown: {e}")))?;
    let request = match tenant {
        Some(token) => format!(r#"{{"type":"shutdown","tenant":"{token}"}}"#),
        None => r#"{"type":"shutdown"}"#.to_string(),
    };
    writeln!(writer, "{request}").map_err(|e| err(format!("shutdown: {e}")))?;
    writer.flush().map_err(|e| err(format!("shutdown: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| err(format!("shutdown: {e}")))?;
    if !line.contains(r#""draining":true"#) {
        return Err(err(format!(
            "shutdown was not acknowledged as draining: {}",
            line.trim()
        )));
    }
    Ok(())
}
