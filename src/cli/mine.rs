//! `seqhide mine` — list frequent patterns (`F(D, σ)`) with PrefixSpan,
//! GSP, or the itemset miner.

use seqhide_mine::{Gsp, MinerConfig, PrefixSpan};

use super::flags::Flags;
use super::{constraints, err, load_db, mode, read_text, CliError};

pub(crate) fn cmd_mine(flags: &Flags) -> Result<String, CliError> {
    let sigma = flags
        .required("sigma")?
        .parse::<usize>()
        .map_err(|_| err("--sigma: not a number"))?;
    if sigma == 0 {
        return Err(err("--sigma must be at least 1"));
    }
    let mut cfg = MinerConfig::new(sigma);
    if let Some(l) = flags.one("max-len") {
        cfg = cfg.with_max_len(l.parse().map_err(|_| err("--max-len: not a number"))?);
    }
    if mode(flags)? == "itemset" {
        let (alphabet, db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
        let result = seqhide_mine::ItemsetMiner::mine(&db, &cfg);
        let mut rows = result.patterns.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.support));
        let top = flags.usize_or("top", rows.len())?;
        let mut out = format!(
            "frequent itemset patterns (σ = {sigma}): {}{}\n",
            rows.len(),
            if result.truncated { " [TRUNCATED]" } else { "" }
        );
        for fp in rows.iter().take(top) {
            out.push_str(&format!(
                "{:>6}  {}\n",
                fp.support,
                fp.seq.render(&alphabet)
            ));
        }
        return Ok(out);
    }
    if mode(flags)? == "timed" {
        return Err(err(
            "mining timed databases is not supported; project the symbols",
        ));
    }
    let db = load_db(flags)?;
    let result = match flags.one("miner").unwrap_or("prefixspan") {
        "prefixspan" => PrefixSpan::mine(&db, &cfg),
        "gsp" => Gsp::mine(&db, &cfg.with_constraints(constraints(flags)?)),
        other => return Err(err(format!("unknown miner '{other}'"))),
    };
    let mut rows = result.patterns.clone();
    rows.sort_by(|a, b| b.support.cmp(&a.support).then(a.seq.cmp(&b.seq)));
    let top = flags.usize_or("top", rows.len())?;
    let mut out = format!(
        "frequent patterns (σ = {sigma}): {}{}\n",
        rows.len(),
        if result.truncated { " [TRUNCATED]" } else { "" }
    );
    for fp in rows.iter().take(top) {
        out.push_str(&format!(
            "{:>6}  {}\n",
            fp.support,
            fp.seq.render(db.alphabet())
        ));
    }
    Ok(out)
}
