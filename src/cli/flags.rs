//! Flag tables and argument parsing: what each subcommand accepts, the
//! `--flag value` parser, and the Levenshtein "did you mean" machinery
//! shared by unknown-flag and unknown-command errors.

use std::collections::HashMap;

use super::{err, CliError};

/// What one subcommand accepts: `valued` flags consume the next argument,
/// `boolean` flags stand alone. Unknown flags are rejected at parse time
/// with a "did you mean" suggestion, so a typo can't silently fall back to
/// a default.
pub(crate) struct FlagSpec {
    pub(crate) command: &'static str,
    valued: &'static [&'static str],
    boolean: &'static [&'static str],
}

pub(crate) const SPECS: &[FlagSpec] = &[
    FlagSpec {
        command: "stats",
        valued: &["db", "mode"],
        boolean: &[],
    },
    FlagSpec {
        command: "mine",
        valued: &[
            "db",
            "sigma",
            "mode",
            "miner",
            "max-len",
            "top",
            "min-gap",
            "max-gap",
            "max-window",
            "metrics-out",
        ],
        boolean: &["progress"],
    },
    FlagSpec {
        command: "hide",
        valued: &[
            "db",
            "psi",
            "pattern",
            "regex",
            "mode",
            "domain",
            "op",
            "algorithm",
            "seed",
            "min-gap",
            "max-gap",
            "max-window",
            "engine",
            "threads",
            "post",
            "out",
            "batch-size",
            "metrics-out",
            "delta",
        ],
        boolean: &["exact", "report", "progress", "stream"],
    },
    FlagSpec {
        command: "verify",
        valued: &["db", "psi", "pattern", "min-gap", "max-gap", "max-window"],
        boolean: &[],
    },
    FlagSpec {
        command: "serve",
        valued: &[
            "addr",
            "threads",
            "queue-depth",
            "ready-file",
            "metrics-addr",
            "metrics-out",
            "data-dir",
            "tenants",
        ],
        boolean: &["progress"],
    },
    FlagSpec {
        command: "loadgen",
        valued: &[
            "addr",
            "clients",
            "duration-secs",
            "psi",
            "seed",
            "db",
            "dataset",
            "sequences",
            "out",
            "delta-fraction",
            "tenants",
            "hog-fraction",
        ],
        boolean: &["shutdown"],
    },
    FlagSpec {
        command: "attack",
        valued: &["original", "released", "train", "pattern"],
        boolean: &[],
    },
    FlagSpec {
        command: "gen",
        valued: &["dataset", "seed", "out"],
        boolean: &[],
    },
];

impl FlagSpec {
    pub(crate) fn for_command(command: &str) -> Option<&'static FlagSpec> {
        SPECS.iter().find(|s| s.command == command)
    }

    fn knows(&self, name: &str) -> Option<bool> {
        if self.boolean.contains(&name) {
            Some(true)
        } else if self.valued.contains(&name) {
            Some(false)
        } else {
            None
        }
    }

    fn unknown_flag_error(&self, name: &str) -> CliError {
        let all = self.valued.iter().chain(self.boolean);
        let best = all
            .clone()
            .map(|cand| (levenshtein(name, cand), *cand))
            .min()
            .filter(|&(d, cand)| d <= 2 || cand.starts_with(name))
            .map(|(_, cand)| cand);
        match best {
            Some(cand) => err(format!(
                "unknown flag --{name} for '{}' (did you mean --{cand}?)",
                self.command
            )),
            None => {
                let valid: Vec<String> = all.map(|f| format!("--{f}")).collect();
                err(format!(
                    "unknown flag --{name} for '{}'; valid flags: {}",
                    self.command,
                    valid.join(", ")
                ))
            }
        }
    }
}

/// Edit distance for the "did you mean" suggestion.
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Parsed `--flag value` / `--flag` arguments; repeated flags accumulate.
pub(crate) struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    pub(crate) fn parse(args: &[String], spec: &FlagSpec) -> Result<Flags, CliError> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(err(format!(
                    "unexpected argument '{arg}' (expected --flag)"
                )));
            };
            let is_boolean = spec
                .knows(name)
                .ok_or_else(|| spec.unknown_flag_error(name))?;
            if is_boolean {
                values
                    .entry(name.to_string())
                    .or_default()
                    .push(String::new());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("--{name} needs a value")))?;
                values
                    .entry(name.to_string())
                    .or_default()
                    .push(value.clone());
                i += 2;
            }
        }
        Ok(Flags { values })
    }

    pub(crate) fn one(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    pub(crate) fn all(&self, name: &str) -> &[String] {
        self.values.get(name).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    pub(crate) fn required(&self, name: &str) -> Result<&str, CliError> {
        self.one(name)
            .ok_or_else(|| err(format!("missing required --{name}")))
    }

    pub(crate) fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.one(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: '{v}' is not a number"))),
        }
    }

    pub(crate) fn u64_or(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.one(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: '{v}' is not a number"))),
        }
    }
}
