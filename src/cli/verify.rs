//! `seqhide verify` — check the hiding requirement `sup_{D'}(S) ≤ ψ` on a
//! released database.

use super::flags::Flags;
use super::{err, load_db, sensitive_set, CliError};

pub(crate) fn cmd_verify(flags: &Flags) -> Result<String, CliError> {
    let mut db = load_db(flags)?;
    let psi = flags
        .required("psi")?
        .parse::<usize>()
        .map_err(|_| err("--psi: not a number"))?;
    let sh = sensitive_set(flags, &mut db)?;
    if sh.is_empty() {
        return Err(err("give at least one --pattern"));
    }
    let report = seqhide_core::verify_hidden(&db, &sh, psi);
    let mut out = String::new();
    for (p, sup) in sh.iter().zip(&report.supports) {
        out.push_str(&format!(
            "{}: support {} {} ψ = {}\n",
            p.render(db.alphabet()),
            sup,
            if *sup <= psi { "≤" } else { ">" },
            psi
        ));
    }
    out.push_str(if report.hidden {
        "HIDDEN\n"
    } else {
        "NOT HIDDEN\n"
    });
    if report.hidden {
        Ok(out)
    } else {
        Err(err(out.trim_end().to_string()))
    }
}
