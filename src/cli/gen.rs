//! `seqhide gen` — emit the calibrated TRUCKS-like / SYNTHETIC-like
//! datasets.

use seqhide_data::{synthetic_like, trucks_like};

use super::flags::Flags;
use super::{err, CliError};

pub(crate) fn cmd_gen(flags: &Flags) -> Result<String, CliError> {
    let seed = flags.u64_or("seed", 42)?;
    let dataset = match flags.required("dataset")? {
        "trucks" => trucks_like(seed),
        "synthetic" => synthetic_like(seed),
        other => return Err(err(format!("unknown dataset '{other}' (trucks|synthetic)"))),
    };
    let path = flags.required("out")?;
    seqhide_data::io::write_db(path, &dataset.db)
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    let (supports, disj) = dataset.support_table();
    Ok(format!(
        "wrote {} ({} sequences) to {path}\nsensitive supports: {:?}, disjunction {}\n",
        dataset.name,
        dataset.db.len(),
        supports,
        disj
    ))
}
