//! `seqhide serve` — run the sanitization service.
//!
//! Binds the threaded TCP server from `seqhide-serve` and blocks until
//! a `shutdown` request drains it. The listening banner goes to stderr
//! (stdout is reserved for the final summary line, which the generic
//! `--metrics-out` handling in [`super::run`] may extend); under
//! `--ready-file` the bound addresses are also written to a file once
//! the listeners are up — wire address on the first line, Prometheus
//! scrape address (when `--metrics-addr` is set) on the second — so
//! scripts using ephemeral ports (`--addr 127.0.0.1:0`) can discover
//! them without racing the bind.

use seqhide_serve::{ServeOptions, Server};

use super::flags::Flags;
use super::{err, CliError};

pub(crate) fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.one("addr").unwrap_or("127.0.0.1:7070").to_string();
    let default_workers = std::thread::available_parallelism().map_or(4, usize::from);
    let workers = flags.usize_or("threads", default_workers)?;
    if workers == 0 {
        return Err(err(
            "--threads must be ≥ 1: the worker pool needs at least one thread to execute jobs",
        ));
    }
    let queue_depth = flags.usize_or("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err(err(
            "--queue-depth must be ≥ 1: a zero-capacity queue would shed every request \
             as overloaded (use a small value like 1 to exercise backpressure)",
        ));
    }
    let metrics_addr = flags.one("metrics-addr").map(str::to_string);
    let data_dir = flags.one("data-dir").map(str::to_string);
    let tenants = match flags.one("tenants") {
        None => None,
        Some(path) => Some(seqhide_serve::tenant::load_tenants_file(path).map_err(err)?),
    };
    let tenant_count = tenants.as_ref().map(Vec::len);
    let server = Server::bind(&ServeOptions {
        addr: addr.clone(),
        workers,
        queue_depth,
        metrics_addr: metrics_addr.clone(),
        data_dir: data_dir.clone(),
        tenants,
    })
    .map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    let local = server.local_addr();
    eprintln!(
        "[seqhide serve] listening on {local} ({workers} worker(s), queue depth {queue_depth})"
    );
    if let Some(count) = tenant_count {
        eprintln!(
            "[seqhide serve] multi-tenant admission on: {count} tenant(s), \
             deficit-weighted fair scheduling"
        );
    }
    if let Some(dir) = &data_dir {
        eprintln!(
            "[seqhide serve] dataset store in {dir} ({} dataset(s) re-attached)",
            server.reattached_datasets()
        );
    }
    if let Some(scrape) = server.metrics_addr() {
        eprintln!("[seqhide serve] Prometheus scrape endpoint on http://{scrape}/metrics");
    }
    if let Some(path) = flags.one("ready-file") {
        let mut contents = format!("{local}\n");
        if let Some(scrape) = server.metrics_addr() {
            contents.push_str(&format!("{scrape}\n"));
        }
        std::fs::write(path, contents).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    let summary = server.run().map_err(|e| err(format!("serve: {e}")))?;
    Ok(format!(
        "serve: {} request(s), {} executed, {} shed as overloaded; drained clean\n",
        summary.requests, summary.executed, summary.overloads
    ))
}
