//! `seqhide hide` — sanitize a database against sensitive patterns.
//!
//! One entry point, one dispatch: [`cmd_hide`] parses the shared
//! [`HideConfig`], classifies the run into a [`Domain`] (which pattern
//! class is being hidden), and routes it either through the in-memory
//! sanitizer or the two-pass streaming pipeline. Every domain drives the
//! same generic core — [`Sanitizer::run_domain_threaded`] in memory,
//! [`Sanitizer::run_streaming_domain`] under `--stream` — so `--stream`,
//! `--threads`, `--seed` and the four HH/HR/RH/RR algorithms behave
//! identically across plain, itemset, timed, regex and string patterns.
//!
//! `--op mark|delete|substitute` selects the distortion operator family
//! ([`OpKind`]); only the substring domain (`--domain string`) accepts
//! edit operations, every other domain is Δ-mark-only and rejects them
//! up front.

use std::io::Write;
use std::path::Path;

use seqhide_core::timed::{TimeConstraints, TimeGap, TimedPattern};
use seqhide_core::{
    DeltaReport, DeltaState, EngineMode, GlobalStrategy, LocalStrategy, Sanitizer, SeqDelta,
    StreamReport, TimedDomain,
};
use seqhide_data::stream::{ItemsetCodec, PlainCodec, SeqReader, TimedCodec};
use seqhide_match::itemset::ItemsetPattern;
use seqhide_match::{
    ItemsetMatchEngine, MatchEngine, ScratchDomain, SensitivePattern, SensitiveSet,
};
use seqhide_num::{BigCount, Sat64};
use seqhide_re::{sanitize_regex_db, RegexDomain, RegexPattern};
use seqhide_string::{StringDomain, StringPattern};
use seqhide_types::{Alphabet, ItemsetSequence, OpKind, Sequence, TimedSequence};

use super::flags::Flags;
use super::{constraints, err, load_db, mode, read_text, sensitive_set, CliError};

/// Which pattern class a `hide` invocation targets. `--domain` names it
/// directly; otherwise `--mode` picks the database line format
/// (plain/itemset/timed), and within plain mode a run that gives only
/// `--regex` patterns is the regex domain.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Domain {
    Plain,
    Itemset,
    Timed,
    Regex,
    String,
}

impl Domain {
    fn parse(flags: &Flags) -> Result<Domain, CliError> {
        let inferred = mode(flags)?;
        if let Some(v) = flags.one("domain") {
            let domain = match v {
                "plain" => Domain::Plain,
                "itemset" => Domain::Itemset,
                "timed" => Domain::Timed,
                "regex" => Domain::Regex,
                "string" => Domain::String,
                other => {
                    return Err(err(format!(
                        "unknown domain '{other}' (plain|itemset|timed|regex|string)"
                    )))
                }
            };
            let line_format = match domain {
                Domain::Plain | Domain::Regex | Domain::String => "plain",
                Domain::Itemset => "itemset",
                Domain::Timed => "timed",
            };
            if flags.one("mode").is_some() && inferred != line_format {
                return Err(err(format!(
                    "--domain {v} reads {line_format}-format input; drop --mode {inferred}"
                )));
            }
            return Ok(domain);
        }
        Ok(match inferred {
            "itemset" => Domain::Itemset,
            "timed" => Domain::Timed,
            _ => {
                if !flags.all("regex").is_empty() && flags.all("pattern").is_empty() {
                    Domain::Regex
                } else {
                    Domain::Plain
                }
            }
        })
    }

    /// The head-line noun ("plain patterns: …").
    fn noun(self) -> &'static str {
        match self {
            Domain::Plain => "plain patterns",
            Domain::Itemset => "itemset patterns",
            Domain::Timed => "timed patterns",
            Domain::Regex => "regex patterns",
            Domain::String => "string patterns",
        }
    }

    /// What one distortion is called in the head line.
    fn unit(self) -> &'static str {
        match self {
            Domain::Plain | Domain::Regex => "marks",
            Domain::Itemset => "item marks",
            Domain::Timed => "event marks",
            Domain::String => "edits",
        }
    }
}

/// The `hide` configuration shared by the in-memory and streaming paths.
struct HideConfig {
    psi: usize,
    seed: u64,
    engine: EngineMode,
    threads: usize,
    local: LocalStrategy,
    global: GlobalStrategy,
    op: OpKind,
}

impl HideConfig {
    fn parse(flags: &Flags) -> Result<Self, CliError> {
        let psi = flags
            .required("psi")?
            .parse::<usize>()
            .map_err(|_| err("--psi: not a number"))?;
        let seed = flags.u64_or("seed", 0)?;
        let engine = match flags.one("engine") {
            None => EngineMode::default(),
            Some(v) => EngineMode::parse(v)
                .ok_or_else(|| err(format!("unknown engine '{v}' (incremental|scratch)")))?,
        };
        let threads = flags.usize_or("threads", 1)?;
        let algorithm = flags.one("algorithm").unwrap_or("hh");
        let (local, global) = seqhide_core::parse_algorithm(algorithm)
            .ok_or_else(|| err(format!("unknown algorithm '{algorithm}' (hh|hr|rh|rr)")))?;
        let op = match flags.one("op") {
            None => OpKind::Mark,
            Some(v) => OpKind::parse(v)
                .ok_or_else(|| err(format!("unknown op '{v}' (mark|delete|substitute)")))?,
        };
        Ok(HideConfig {
            psi,
            seed,
            engine,
            threads,
            local,
            global,
            op,
        })
    }

    fn sanitizer(&self, exact: bool) -> Sanitizer {
        Sanitizer::new(self.local, self.global, self.psi)
            .with_seed(self.seed)
            .with_exact_counts(exact)
            .with_engine(self.engine)
            .with_threads(self.threads)
    }
}

pub(crate) fn cmd_hide(flags: &Flags) -> Result<String, CliError> {
    let cfg = HideConfig::parse(flags)?;
    let domain = Domain::parse(flags)?;
    if cfg.op != OpKind::Mark && domain != Domain::String {
        return Err(err(format!(
            "--op {}: {} are hidden by Δ-marks only; edit operations \
             (delete|substitute) need the substring domain — did you mean --domain string?",
            cfg.op.name(),
            domain.noun()
        )));
    }
    if let Some(edits) = flags.one("delta") {
        return hide_delta(flags, &cfg, domain, edits);
    }
    if flags.has("stream") {
        return cmd_hide_stream(flags, &cfg, domain);
    }
    match domain {
        Domain::Itemset => hide_itemset(flags, &cfg),
        Domain::Timed => hide_timed(flags, &cfg),
        Domain::String => hide_string(flags, &cfg),
        Domain::Plain | Domain::Regex => hide_plain(flags, &cfg),
    }
}

/// Appended lines (tagged with their 1-based edits-file line number)
/// plus removed 0-based database ordinals.
type Edits = (Vec<(usize, String)>, Vec<usize>);

/// Parses the `--delta` edits file: `+ <sequence line>` appends a
/// sequence (in the run's database line format), `- <n>` removes the
/// 0-based data-line ordinal `n` from the current database; blank lines
/// and `#` comments are skipped. The whole file is applied as one batch
/// through [`DeltaState::apply_delta`]. Added lines carry their 1-based
/// edits-file line number for error messages.
fn parse_edits(path: &str) -> Result<Edits, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('+') {
            added.push((i + 1, rest.trim().to_string()));
        } else if let Some(rest) = line.strip_prefix('-') {
            let ord = rest.trim().parse().map_err(|_| {
                err(format!(
                    "--delta line {}: '-' needs a 0-based sequence ordinal, got '{}'",
                    i + 1,
                    rest.trim()
                ))
            })?;
            removed.push(ord);
        } else {
            return Err(err(format!(
                "--delta line {}: expected '+ <sequence>' or '- <ordinal>'",
                i + 1
            )));
        }
    }
    Ok((added, removed))
}

/// Builds a [`DeltaState`] over `originals` and applies the one edits
/// batch. The released content is byte-identical to a full hide of the
/// mutated database on the same seed (pinned by tests/delta.rs) — the
/// delta path is only ever a faster route to the same release.
fn run_delta<D>(
    config: &Sanitizer,
    domain: &mut D,
    originals: Vec<D::Seq>,
    added: Vec<D::Seq>,
    removed: Vec<usize>,
) -> Result<(DeltaReport, Vec<D::Seq>), CliError>
where
    D: seqhide_match::PatternDomain,
    D::Seq: Clone,
{
    let mut state = DeltaState::build(config, domain, originals);
    let report = state
        .apply_delta(domain, SeqDelta { added, removed })
        .map_err(|e| err(format!("--delta: {e}")))?;
    Ok((report, state.released().to_vec()))
}

/// Renders plain-mode sequences in [`seqhide_types::SequenceDb::to_text`]
/// format (space-joined symbols, one line each, marks as `Δ`).
fn render_plain(alphabet: &Alphabet, seqs: &[Sequence]) -> String {
    let mut out = String::new();
    for t in seqs {
        let words: Vec<String> = t.iter().map(|&s| alphabet.render(s)).collect();
        out.push_str(&words.join(" "));
        out.push('\n');
    }
    out
}

/// Formats the delta head lines and writes the release to `--out` or the
/// response body — the delta-path counterpart of each domain's tail.
fn finish_delta(
    flags: &Flags,
    domain: Domain,
    report: &DeltaReport,
    text: String,
) -> Result<String, CliError> {
    let r = &report.report;
    let mut out = format!(
        "{}: {} {} in {} sequences; residual supports {:?}\n",
        domain.noun(),
        r.marks_introduced,
        domain.unit(),
        r.sequences_sanitized,
        r.residual_supports
    );
    out.push_str(&format!(
        "delta: +{} -{} sequences; {} re-marked, {} restored\n",
        report.added, report.removed, report.remarked, report.restored
    ));
    if !r.hidden {
        return Err(err(format!(
            "internal: sanitizer failed to hide {}",
            domain.noun()
        )));
    }
    if let Some(path) = flags.one("out") {
        std::fs::write(path, &text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

/// `hide --delta <edits-file>`: sanitize the database, then absorb one
/// mutation batch incrementally through the persistent supporter index
/// ([`seqhide_core::delta`]) instead of re-sanitizing from scratch. The
/// printed report and release describe the post-delta database and are
/// byte-identical to a fresh `hide` of it on the same seed.
fn hide_delta(
    flags: &Flags,
    cfg: &HideConfig,
    domain: Domain,
    edits: &str,
) -> Result<String, CliError> {
    if flags.has("stream") {
        return Err(err(
            "--delta applies one in-memory edits batch; it cannot be combined with --stream",
        ));
    }
    if flags.one("post").unwrap_or("keep") != "keep" {
        return Err(err("--delta maintains a Δ-marked release incrementally; \
             --post delete/replace need a full-database pass"));
    }
    if cfg.op == OpKind::Substitute {
        return Err(err(
            "--delta cannot replay --op substitute: replacement symbols depend on \
             alphabet interning order, which differs once edits are interned after \
             the patterns — use --op mark or --op delete",
        ));
    }
    if domain == Domain::Regex || !flags.all("regex").is_empty() {
        return Err(err(
            "--delta maintains a per-pattern supporter index; --regex patterns \
             are not supported — give --pattern",
        ));
    }
    let (added_lines, removed) = parse_edits(edits)?;
    match domain {
        Domain::Plain => {
            let mut db = load_db(flags)?;
            let sh = sensitive_set(flags, &mut db)?;
            if sh.is_empty() {
                return Err(err("nothing to hide: give --pattern"));
            }
            let added: Vec<Sequence> = added_lines
                .iter()
                .map(|(_, l)| Sequence::parse(l, db.alphabet_mut()))
                .collect();
            let exact = flags.has("exact");
            let config = cfg.sanitizer(exact);
            let originals = db.sequences().to_vec();
            // The same (exact × engine) dispatch the full path routes
            // through Sanitizer::run — the delta state drives the domain
            // directly, so the arms are spelled out here.
            let (report, released) = match (exact, cfg.engine) {
                (false, EngineMode::Incremental) => run_delta(
                    &config,
                    &mut MatchEngine::<Sat64>::new(&sh),
                    originals,
                    added,
                    removed,
                )?,
                (true, EngineMode::Incremental) => run_delta(
                    &config,
                    &mut MatchEngine::<BigCount>::new(&sh),
                    originals,
                    added,
                    removed,
                )?,
                (false, EngineMode::Scratch) => run_delta(
                    &config,
                    &mut ScratchDomain::<Sat64>::new(&sh),
                    originals,
                    added,
                    removed,
                )?,
                (true, EngineMode::Scratch) => run_delta(
                    &config,
                    &mut ScratchDomain::<BigCount>::new(&sh),
                    originals,
                    added,
                    removed,
                )?,
            };
            finish_delta(
                flags,
                Domain::Plain,
                &report,
                render_plain(db.alphabet(), &released),
            )
        }
        Domain::Itemset => {
            let (mut alphabet, db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
            let patterns = itemset_patterns(flags, &mut alphabet)?;
            let added: Vec<ItemsetSequence> = added_lines
                .iter()
                .map(|(_, l)| seqhide_data::io::parse_itemset_line(l, &mut alphabet))
                .collect();
            let (report, released) = run_delta(
                &cfg.sanitizer(false),
                &mut ItemsetMatchEngine::<Sat64>::new(&patterns),
                db,
                added,
                removed,
            )?;
            finish_delta(
                flags,
                Domain::Itemset,
                &report,
                seqhide_data::io::itemset_db_to_text(&alphabet, &released),
            )
        }
        Domain::Timed => {
            let (mut alphabet, db) = seqhide_data::io::parse_timed_db(&read_text(flags)?)
                .map_err(|e| err(e.to_string()))?;
            let patterns = timed_patterns(flags, &mut alphabet)?;
            let mut added = Vec::new();
            for (lineno, l) in &added_lines {
                added.push(
                    seqhide_data::io::parse_timed_line(*lineno, l, &mut alphabet)
                        .map_err(|e| err(format!("--delta: {e}")))?,
                );
            }
            let (report, released) = run_delta(
                &cfg.sanitizer(false),
                &mut TimedDomain::<Sat64>::new(&patterns),
                db,
                added,
                removed,
            )?;
            finish_delta(
                flags,
                Domain::Timed,
                &report,
                seqhide_data::io::timed_db_to_text(&alphabet, &released),
            )
        }
        Domain::String => {
            let mut db = load_db(flags)?;
            let patterns = string_patterns(flags, db.alphabet_mut())?;
            let added: Vec<Sequence> = added_lines
                .iter()
                .map(|(_, l)| Sequence::parse(l, db.alphabet_mut()))
                .collect();
            let sigma_len = db.alphabet().len();
            let originals = db.sequences().to_vec();
            let (report, released) = run_delta(
                &cfg.sanitizer(false),
                &mut StringDomain::<Sat64>::new(&patterns, sigma_len).with_op(cfg.op),
                originals,
                added,
                removed,
            )?;
            finish_delta(
                flags,
                Domain::String,
                &report,
                render_plain(db.alphabet(), &released),
            )
        }
        Domain::Regex => unreachable!("rejected above"),
    }
}

/// Parses `--pattern` values in the itemset syntax (`a,b c`) against
/// `alphabet`.
fn itemset_patterns(
    flags: &Flags,
    alphabet: &mut Alphabet,
) -> Result<Vec<ItemsetPattern>, CliError> {
    let cs = constraints(flags)?;
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let elements: Vec<seqhide_types::Itemset> = text
            .split_whitespace()
            .map(|elem| {
                seqhide_types::Itemset::new(
                    elem.split(',')
                        .filter(|w| !w.is_empty())
                        .map(|w| alphabet.intern(w))
                        .collect(),
                )
            })
            .collect();
        let seq = seqhide_types::ItemsetSequence::new(elements);
        patterns.push(
            ItemsetPattern::new(seq, cs.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    if patterns.is_empty() {
        return Err(err(
            "nothing to hide: give --pattern (itemset syntax: a,b c)",
        ));
    }
    Ok(patterns)
}

/// Parses `--pattern` values for timed mode: plain symbols, with
/// `--min-gap`/`--max-gap`/`--max-window` read as elapsed ticks.
fn timed_patterns(flags: &Flags, alphabet: &mut Alphabet) -> Result<Vec<TimedPattern>, CliError> {
    let mut tc = TimeConstraints::none();
    let min = flags.u64_or("min-gap", 0)?;
    let max = match flags.one("max-gap") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| err("--max-gap: not a number"))?),
    };
    if min > 0 || max.is_some() {
        tc = TimeConstraints::uniform_gap(TimeGap { min, max });
    }
    if let Some(w) = flags.one("max-window") {
        tc.max_window = Some(w.parse().map_err(|_| err("--max-window: not a number"))?);
    }
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, alphabet);
        patterns.push(
            TimedPattern::new(seq, tc.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    if patterns.is_empty() {
        return Err(err(
            "nothing to hide: give --pattern (plain symbols; gaps in ticks)",
        ));
    }
    Ok(patterns)
}

/// Compiles `--regex` values against `alphabet` with the run's
/// gap/window constraints.
fn regex_patterns(flags: &Flags, alphabet: &mut Alphabet) -> Result<Vec<RegexPattern>, CliError> {
    let cs = constraints(flags)?;
    flags
        .all("regex")
        .iter()
        .map(|text| {
            RegexPattern::compile(text, alphabet)
                .map(|p| p.with_constraints(&cs))
                .map_err(|e| err(format!("--regex '{text}': {e}")))
        })
        .collect()
}

/// Parses `--pattern` values as contiguous sensitive substrings.
fn string_patterns(flags: &Flags, alphabet: &mut Alphabet) -> Result<Vec<StringPattern>, CliError> {
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, alphabet);
        patterns
            .push(StringPattern::new(seq).map_err(|e| err(format!("--pattern '{text}': {e}")))?);
    }
    if patterns.is_empty() {
        return Err(err(
            "nothing to hide: give --pattern (a contiguous substring)",
        ));
    }
    Ok(patterns)
}

/// Applies the `--post` stage to a mark-only non-plain domain: `delete`
/// runs the generic safe delete → re-verify → re-sanitize loop
/// ([`seqhide_core::post::delete_markers_safe_domain`]) so that index
/// shifts cannot resurrect constrained occurrences; `replace` writes
/// plain alphabet symbols and stays plain-mode-only.
fn post_domain<D: seqhide_match::PatternDomain>(
    flags: &Flags,
    cfg: &HideConfig,
    db: &mut [D::Seq],
    domain: &mut D,
    delete: impl FnMut(&mut D::Seq) -> usize,
) -> Result<Option<String>, CliError> {
    match flags.one("post").unwrap_or("keep") {
        "keep" => Ok(None),
        "delete" => {
            let dr = seqhide_core::post::delete_markers_safe_domain(
                db,
                domain,
                cfg.psi,
                &Sanitizer::new(cfg.local, cfg.global, cfg.psi),
                delete,
            );
            Ok(Some(format!("post: deleted Δ ({} round(s))\n", dr.rounds)))
        }
        "replace" => Err(err(
            "--post replace writes plain alphabet symbols; it applies to plain-mode runs only",
        )),
        other => Err(err(format!(
            "unknown post strategy '{other}' (keep|delete|replace)"
        ))),
    }
}

fn hide_itemset(flags: &Flags, cfg: &HideConfig) -> Result<String, CliError> {
    let (mut alphabet, mut db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
    let patterns = itemset_patterns(flags, &mut alphabet)?;
    let report = cfg
        .sanitizer(false)
        .run_domain_threaded(&mut db, &|| ItemsetMatchEngine::<Sat64>::new(&patterns));
    if !report.hidden {
        return Err(err("internal: sanitizer failed to hide itemset patterns"));
    }
    let mut out = format!(
        "itemset patterns: {} item marks in {} sequences; residual supports {:?}\n",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports
    );
    // Dropping emptied elements shifts positions, so gap-constrained
    // itemset occurrences can resurrect — the generic safe loop
    // re-verifies and re-sanitizes until the release is clean.
    let post = post_domain(
        flags,
        cfg,
        &mut db,
        &mut ItemsetMatchEngine::<Sat64>::new(&patterns),
        ItemsetSequence::delete_marked,
    )?;
    if let Some(line) = post {
        out.push_str(&line);
    }
    let text = seqhide_data::io::itemset_db_to_text(&alphabet, &db);
    if let Some(path) = flags.one("out") {
        std::fs::write(path, &text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

fn hide_timed(flags: &Flags, cfg: &HideConfig) -> Result<String, CliError> {
    let (mut alphabet, mut db) =
        seqhide_data::io::parse_timed_db(&read_text(flags)?).map_err(|e| err(e.to_string()))?;
    let patterns = timed_patterns(flags, &mut alphabet)?;
    let report = cfg
        .sanitizer(false)
        .run_domain_threaded(&mut db, &|| TimedDomain::<Sat64>::new(&patterns));
    if !report.hidden {
        return Err(err("internal: sanitizer failed to hide timed patterns"));
    }
    let mut out = format!(
        "timed patterns: {} event marks in {} sequences; residual supports {:?}\n",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports
    );
    // Deleting a marked event preserves every surviving time tag, so
    // time-expressed constraints cannot resurrect — but the generic safe
    // loop re-verifies anyway rather than trusting that argument.
    let post = post_domain(
        flags,
        cfg,
        &mut db,
        &mut TimedDomain::<Sat64>::new(&patterns),
        TimedSequence::delete_marked,
    )?;
    if let Some(line) = post {
        out.push_str(&line);
    }
    let text = seqhide_data::io::timed_db_to_text(&alphabet, &db);
    if let Some(path) = flags.one("out") {
        std::fs::write(path, &text).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&text);
    }
    Ok(out)
}

/// In-memory substring hide: sensitive substrings sanitized by the
/// `--op`-selected edit family. The substitution family picks replacement
/// candidates in interned-id order, so the database is parsed (and its
/// symbols interned) before the patterns — the same order the streaming
/// path replays with its pre-pass.
fn hide_string(flags: &Flags, cfg: &HideConfig) -> Result<String, CliError> {
    if flags.one("post").unwrap_or("keep") != "keep" {
        return Err(err(
            "--domain string edits during sanitization (--op delete|substitute); \
             --post delete/replace apply to Δ-marked plain-mode releases",
        ));
    }
    if !flags.all("regex").is_empty() {
        return Err(err(
            "--regex applies to plain mode only: the string domain hides --pattern substrings",
        ));
    }
    let mut db = load_db(flags)?;
    let patterns = string_patterns(flags, db.alphabet_mut())?;
    let sigma_len = db.alphabet().len();
    let op = cfg.op;
    let report = cfg
        .sanitizer(false)
        .run_domain_threaded(db.sequences_mut(), &|| {
            StringDomain::<Sat64>::new(&patterns, sigma_len).with_op(op)
        });
    if !report.hidden {
        return Err(err("internal: sanitizer failed to hide string patterns"));
    }
    let mut out = format!(
        "string patterns: {} edits in {} sequences; residual supports {:?}\n",
        report.marks_introduced, report.sequences_sanitized, report.residual_supports
    );
    if let Some(path) = flags.one("out") {
        seqhide_data::io::write_db(path, &db)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&db.to_text());
    }
    Ok(out)
}

/// In-memory plain-mode hide: plain `S_h` and/or regex patterns, with the
/// optional `--post` second stage.
fn hide_plain(flags: &Flags, cfg: &HideConfig) -> Result<String, CliError> {
    let psi = cfg.psi;
    let mut db = load_db(flags)?;
    let sh = sensitive_set(flags, &mut db)?;
    let regexes = regex_patterns(flags, db.alphabet_mut())?;
    if sh.is_empty() && regexes.is_empty() {
        return Err(err("nothing to hide: give --pattern and/or --regex"));
    }
    let seed = cfg.seed;
    let mut out = String::new();
    let mut marks = 0;
    if !sh.is_empty() {
        let report = cfg.sanitizer(flags.has("exact")).run(&mut db, &sh);
        marks += report.marks_introduced;
        out.push_str(&format!(
            "plain patterns: {} marks in {} sequences; residual supports {:?}\n",
            report.marks_introduced, report.sequences_sanitized, report.residual_supports
        ));
        if flags.has("report") {
            out.push_str(&format!(
                "engine: {} cell repairs, {} fallback recounts\n",
                report.engine_repairs, report.fallback_recounts
            ));
        }
        if !report.hidden {
            return Err(err("internal: sanitizer failed to hide plain patterns"));
        }
    }
    if !regexes.is_empty() {
        let report = cfg
            .sanitizer(false)
            .run_domain_threaded(db.sequences_mut(), &|| RegexDomain::<Sat64>::new(&regexes));
        marks += report.marks_introduced;
        out.push_str(&format!(
            "regex patterns: {} marks in {} sequences; residual supports {:?}\n",
            report.marks_introduced, report.sequences_sanitized, report.residual_supports
        ));
        if !report.hidden {
            return Err(err("internal: sanitizer failed to hide regex patterns"));
        }
    }
    match flags.one("post").unwrap_or("keep") {
        "keep" => {}
        "delete" => {
            // Δ-deletion shrinks gaps, which can resurrect *any*
            // constrained matcher's occurrences — regex patterns included,
            // not just plain S_h. The hook re-verifies (and if needed
            // re-sanitizes) the regexes each round; it returns 0 once they
            // are hidden, so the loop ends with both families clean.
            let (released, dr) = seqhide_core::post::delete_markers_safe_with(
                &db,
                &sh,
                psi,
                &Sanitizer::new(cfg.local, cfg.global, psi),
                |cur| {
                    if regexes.is_empty() {
                        0
                    } else {
                        sanitize_regex_db(cur, &regexes, psi, cfg.local, seed).marks_introduced
                    }
                },
            );
            db = released;
            out.push_str(&format!("post: deleted Δ ({} round(s))\n", dr.rounds));
        }
        "replace" => {
            let rep = seqhide_core::post::replace_markers(&mut db, &sh, seed);
            out.push_str(&format!(
                "post: replaced {} Δ, kept {}\n",
                rep.replaced, rep.kept
            ));
        }
        other => {
            return Err(err(format!(
                "unknown post strategy '{other}' (keep|delete|replace)"
            )))
        }
    }
    out.push_str(&format!("total marks (M1): {marks}\n"));
    if let Some(path) = flags.one("out") {
        seqhide_data::io::write_db(path, &db)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    } else {
        out.push_str(&db.to_text());
    }
    if flags.has("report") {
        let stats = db.stats();
        out.push_str(&format!(
            "released: {} sequences, {} residual Δ\n",
            stats.len, stats.marks
        ));
    }
    Ok(out)
}

/// Runs a streaming sanitize against the flag-selected sink: sharded
/// spill + atomic rename under `--out`, an in-memory buffer (returned as
/// the body text) otherwise.
fn with_stream_sink(
    flags: &Flags,
    db_path: &str,
    run: impl FnOnce(&mut dyn Write) -> std::io::Result<StreamReport>,
) -> Result<(StreamReport, String), CliError> {
    let stream_io = |e: std::io::Error| err(format!("cannot stream {db_path}: {e}"));
    if let Some(out_path) = flags.one("out") {
        let shard_dir = Path::new(out_path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        let mut sink = seqhide_data::ShardWriter::new(shard_dir, 8 << 20);
        let sr = run(&mut sink).map_err(stream_io)?;
        sink.finish_to_path(out_path)
            .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
        Ok((sr, String::new()))
    } else {
        let mut buf = Vec::new();
        let sr = run(&mut buf).map_err(stream_io)?;
        Ok((sr, String::from_utf8(buf).expect("release text is UTF-8")))
    }
}

/// `hide --stream`: the two-pass bounded-memory pipeline
/// ([`seqhide_core::stream`]) for every pattern class. Pass 1 scans for
/// supporters, pass 2 re-streams in `--batch-size` batches and writes
/// incrementally — the database is never fully resident. Same seed ⇒
/// byte-identical output to the in-memory path (pinned by
/// tests/stream.rs and tests/cli.rs).
fn cmd_hide_stream(flags: &Flags, cfg: &HideConfig, domain: Domain) -> Result<String, CliError> {
    if flags.one("post").unwrap_or("keep") != "keep" {
        return Err(err(
            "--stream writes incrementally; --post delete/replace need the full database in memory",
        ));
    }
    if matches!(domain, Domain::Itemset | Domain::Timed | Domain::String)
        && !flags.all("regex").is_empty()
    {
        return Err(err(
            "--stream hides one pattern class per run: --regex applies to plain mode only",
        ));
    }
    let db_path = flags.required("db")?.to_string();
    let batch_size = flags.usize_or("batch-size", 1024)?;
    if batch_size == 0 {
        return Err(err(
            "--batch-size must be ≥ 1: pass 2 re-streams the database in batches and \
             needs at least one resident sequence per batch",
        ));
    }
    let sanitizer = cfg.sanitizer(flags.has("exact"));
    let input = Path::new(&db_path);

    let (report, body) = match domain {
        Domain::Plain => {
            if !flags.all("regex").is_empty() {
                return Err(err(
                    "--stream hides one pattern class per run: give --pattern or --regex, not both",
                ));
            }
            let cs = constraints(flags)?;
            let mut alphabet = Alphabet::new();
            let mut patterns = Vec::new();
            for text in flags.all("pattern") {
                let seq = Sequence::parse(text, &mut alphabet);
                patterns.push(
                    SensitivePattern::new(seq, cs.clone())
                        .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
                );
            }
            let sh = SensitiveSet::from_patterns(patterns);
            if sh.is_empty() {
                return Err(err("nothing to hide: give --pattern"));
            }
            with_stream_sink(flags, &db_path, |sink| {
                sanitizer.run_streaming(input, &mut alphabet, &sh, batch_size, sink)
            })?
        }
        Domain::Regex => {
            let mut alphabet = Alphabet::new();
            let regexes = regex_patterns(flags, &mut alphabet)?;
            with_stream_sink(flags, &db_path, |sink| {
                sanitizer.run_streaming_domain(
                    input,
                    &mut alphabet,
                    &PlainCodec,
                    &|| RegexDomain::<Sat64>::new(&regexes),
                    batch_size,
                    sink,
                )
            })?
        }
        Domain::Itemset => {
            // The level-2 item choice iterates an element's items in
            // Symbol-id order, so the release depends on interning order.
            // Pre-intern the database's symbols in file order (what the
            // in-memory path sees) before the pattern's, so both paths
            // release identical bytes. One extra sequential pass, O(1)
            // resident memory.
            let mut alphabet = Alphabet::new();
            let pre_io = |e: std::io::Error| err(format!("cannot stream {db_path}: {e}"));
            let mut reader = SeqReader::open(input).map_err(pre_io)?;
            while reader
                .next_record(&ItemsetCodec, &mut alphabet)
                .map_err(pre_io)?
                .is_some()
            {}
            let patterns = itemset_patterns(flags, &mut alphabet)?;
            with_stream_sink(flags, &db_path, |sink| {
                sanitizer.run_streaming_domain(
                    input,
                    &mut alphabet,
                    &ItemsetCodec,
                    &|| ItemsetMatchEngine::<Sat64>::new(&patterns),
                    batch_size,
                    sink,
                )
            })?
        }
        Domain::Timed => {
            let mut alphabet = Alphabet::new();
            let patterns = timed_patterns(flags, &mut alphabet)?;
            with_stream_sink(flags, &db_path, |sink| {
                sanitizer.run_streaming_domain(
                    input,
                    &mut alphabet,
                    &TimedCodec,
                    &|| TimedDomain::<Sat64>::new(&patterns),
                    batch_size,
                    sink,
                )
            })?
        }
        Domain::String => {
            // The substitution family tries replacement symbols in
            // interned-id order, so the release depends on intern order.
            // Pre-intern the database's symbols in file order (what the
            // in-memory path sees) before the patterns', so both paths
            // release identical bytes. One extra sequential pass, O(1)
            // resident memory — the itemset branch above does the same.
            let mut alphabet = Alphabet::new();
            let pre_io = |e: std::io::Error| err(format!("cannot stream {db_path}: {e}"));
            let mut reader = SeqReader::open(input).map_err(pre_io)?;
            while reader
                .next_record(&PlainCodec, &mut alphabet)
                .map_err(pre_io)?
                .is_some()
            {}
            let patterns = string_patterns(flags, &mut alphabet)?;
            let sigma_len = alphabet.len();
            let op = cfg.op;
            with_stream_sink(flags, &db_path, |sink| {
                sanitizer.run_streaming_domain(
                    input,
                    &mut alphabet,
                    &PlainCodec,
                    &|| StringDomain::<Sat64>::new(&patterns, sigma_len).with_op(op),
                    batch_size,
                    sink,
                )
            })?
        }
    };

    let mut head = format!(
        "{}: {} {} in {} sequences; residual supports {:?}\n",
        domain.noun(),
        report.report.marks_introduced,
        domain.unit(),
        report.report.sequences_sanitized,
        report.report.residual_supports
    );
    head.push_str(&format!(
        "stream: {} sequences in {} batch(es) of ≤ {batch_size}; peak batch {} B\n",
        report.sequences_total, report.batches, report.peak_batch_bytes
    ));
    if flags.has("report") {
        head.push_str(&format!(
            "engine: {} cell repairs, {} fallback recounts\n",
            report.report.engine_repairs, report.report.fallback_recounts
        ));
    }
    if !report.report.hidden {
        return Err(err(format!(
            "internal: sanitizer failed to hide {}",
            domain.noun()
        )));
    }
    head.push_str(&format!(
        "total marks (M1): {}\n",
        report.report.marks_introduced
    ));
    if let Some(out_path) = flags.one("out") {
        head.push_str(&format!("wrote {out_path}\n"));
    }
    Ok(head + &body)
}
