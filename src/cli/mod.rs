//! The `seqhide` command-line interface.
//!
//! Subcommands (see `seqhide help`):
//!
//! * `stats`  — summarise a sequence database;
//! * `mine`   — list frequent patterns (`F(D, σ)`);
//! * `hide`   — sanitize a database against sensitive patterns;
//! * `verify` — check the hiding requirement on a released database;
//! * `serve`  — run the long-lived sanitization service (TCP, NDJSON);
//! * `loadgen` — drive a serve instance with concurrent load and record
//!   `BENCH_serve.json`;
//! * `gen`    — emit the calibrated TRUCKS-like / SYNTHETIC-like datasets.
//!
//! The implementation is a plain function from arguments to output text so
//! the whole surface is exercised by integration tests without spawning
//! processes; `src/bin/seqhide.rs` is a three-line wrapper.
//!
//! One module per subcommand: `flags` holds the flag table and parser,
//! `stats`/`mine`/`hide`/`verify`/`attack`/`gen` each implement their
//! command, and this root keeps the shared input helpers plus [`run`].

use std::fmt;

use seqhide_match::{ConstraintSet, Gap, SensitivePattern, SensitiveSet};
use seqhide_obs as obs;
use seqhide_types::{Sequence, SequenceDb};

mod attack;
mod flags;
mod gen;
mod hide;
mod loadgen;
mod mine;
mod serve;
mod stats;
mod verify;

use flags::{levenshtein, FlagSpec, Flags, SPECS};

/// CLI failure: a message for stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

pub(crate) fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

const HELP: &str = "\
seqhide — hiding sensitive sequential patterns (ICDE 2007 reproduction)

USAGE:
  seqhide stats  --db FILE [--mode plain|itemset|timed]
  seqhide mine   --db FILE --sigma N [--mode plain|itemset]
                 [--miner prefixspan|gsp] [--max-len L] [--top K]
                 [--min-gap G] [--max-gap G] [--max-window W]
                 [--metrics-out FILE] [--progress]
  seqhide hide   --db FILE --psi N (--pattern \"a b\")... [--regex \"a (b|c)+ d\"]...
                 [--mode plain|itemset|timed]
                 [--domain plain|itemset|timed|regex|string]
                 [--op mark|delete|substitute] [--algorithm hh|hr|rh|rr]
                 [--seed S] [--exact] [--min-gap G] [--max-gap G] [--max-window W]
                 [--engine incremental|scratch] [--threads N]
                 [--post keep|delete|replace] [--out FILE] [--report]
                 [--stream] [--batch-size N] [--delta FILE]
                 [--metrics-out FILE] [--progress]
  seqhide verify --db FILE --psi N (--pattern \"a b\")...
  seqhide serve  [--addr HOST:PORT] [--threads N] [--queue-depth N]
                 [--ready-file FILE] [--metrics-addr HOST:PORT]
                 [--data-dir DIR] [--metrics-out FILE]
  seqhide loadgen --addr HOST:PORT [--clients N] [--duration-secs S]
                 [--psi N] [--seed S] [--db FILE] [--dataset NAME]
                 [--sequences N] [--delta-fraction F] [--out FILE]
                 [--shutdown]
  seqhide attack --original FILE --released FILE [--train FILE]
                 (--pattern \"a b\")...
  seqhide gen    --dataset trucks|synthetic [--seed S] --out FILE
  seqhide help | --version

FORMATS (one sequence per line; '#' comments; marks render as Δ):
  plain    whitespace-separated symbols:      login search checkout
  itemset  comma-joined items per element:    bread,milk beer
  timed    symbol@tick events:                login@0 search@15
In itemset mode --pattern uses the itemset syntax; in timed mode
--min-gap/--max-gap/--max-window are elapsed ticks, not index distances.

DOMAINS AND OPERATORS:
  --domain names the pattern class directly (otherwise inferred from
  --mode and --regex). --domain string hides *contiguous substrings* of
  plain-format input and is the only domain accepting edit operations:
    --op mark        Δ-mark the chosen position (default, every domain)
    --op delete      remove the element; refused (Δ fallback) when the
                     deletion would splice a fresh sensitive occurrence
    --op substitute  rewrite with the first alphabet symbol creating no
                     sensitive occurrence; Δ fallback when none exists
  Every other domain is Δ-mark-only and rejects --op delete|substitute.

STREAMING:
  --stream            two-pass bounded-memory pipeline: never holds more
                      than --batch-size sequences resident; output is
                      byte-identical to the in-memory path on the same
                      seed. Every pattern class streams — plain, itemset,
                      timed, --regex and --domain string — one class per
                      run; --post keep only.
  --batch-size N      sequences resident per pass-2 batch (default 1024)

DELTAS:
  --delta FILE        sanitize, then absorb FILE's edits incrementally
                      through the persistent supporter index instead of
                      re-sanitizing from scratch. One edit per line:
                      '+ <sequence>' appends (database line format),
                      '- <n>' removes the 0-based data-line ordinal n;
                      '#' comments and blank lines skipped. Output equals
                      a fresh hide of the mutated database on the same
                      seed. Plain/itemset/timed/string domains; --op
                      mark|delete; excludes --stream, --post and --regex.

SERVING (protocol spec and ops runbook in docs/SERVER.md):
  serve answers newline-delimited JSON requests (sanitize, verify,
  stats, delta, load, load_chunk, unload, datasets, health, metrics,
  debug, shutdown) over TCP. Releases are byte-identical to the equivalent
  'seqhide hide' run. A bounded job queue (--queue-depth, default 64)
  feeds --threads workers (default: available cores); when the queue is
  full the server responds 'overloaded' instead of buffering.
  'shutdown' drains in-flight work and exits 0. --addr defaults to
  127.0.0.1:7070; port 0 picks a free port, written to --ready-file for
  scripts (first line; the scrape address follows on a second line when
  --metrics-addr is set). --metrics-addr adds a plain-HTTP listener
  serving GET /metrics (Prometheus text), /metrics.json, and /healthz
  for scrapers. 'load' interns a database once under a name and
  sanitize/verify/stats requests reference it with dataset:\"name\"
  instead of shipping the text; 'delta' mutates a loaded dataset in
  place (append/remove sequences) and re-sanitizes it incrementally,
  bumping its version; --data-dir DIR persists loaded datasets as
  compressed shard stores (plus .sqdi supporter indexes for delta
  sessions) and re-attaches them after a restart.
  loadgen drives a running server with a zipfian request mix from N
  client connections and writes BENCH_serve.json (throughput,
  p50/p95/p99 latency, shed rate, drain time); --dataset NAME loads the
  workload database once and references it by name; --shutdown drains
  the server afterwards.

TELEMETRY:
  --metrics-out FILE  write the run's span/counter/histogram snapshot as
                      JSON (schema in docs/OBSERVABILITY.md); on failure
                      the snapshot is still written, with an \"error\" field
  --progress          print throttled progress lines to stderr
";

pub(crate) fn load_db(flags: &Flags) -> Result<SequenceDb, CliError> {
    let path = flags.required("db")?;
    seqhide_data::io::read_db(path).map_err(|e| err(format!("cannot read {path}: {e}")))
}

pub(crate) fn constraints(flags: &Flags) -> Result<ConstraintSet, CliError> {
    let min = flags.usize_or("min-gap", 0)?;
    let max = match flags.one("max-gap") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| err("--max-gap: not a number"))?),
    };
    if let Some(max) = max {
        if max < min {
            return Err(err("--max-gap must be ≥ --min-gap"));
        }
    }
    let mut cs = if min == 0 && max.is_none() {
        ConstraintSet::none()
    } else {
        ConstraintSet::uniform_gap(Gap { min, max })
    };
    if let Some(w) = flags.one("max-window") {
        cs.max_window = Some(w.parse().map_err(|_| err("--max-window: not a number"))?);
    }
    Ok(cs)
}

pub(crate) fn sensitive_set(flags: &Flags, db: &mut SequenceDb) -> Result<SensitiveSet, CliError> {
    let cs = constraints(flags)?;
    let mut patterns = Vec::new();
    for text in flags.all("pattern") {
        let seq = Sequence::parse(text, db.alphabet_mut());
        patterns.push(
            SensitivePattern::new(seq, cs.clone())
                .map_err(|e| err(format!("--pattern '{text}': {e}")))?,
        );
    }
    Ok(SensitiveSet::from_patterns(patterns))
}

pub(crate) fn mode(flags: &Flags) -> Result<&str, CliError> {
    match flags.one("mode").unwrap_or("plain") {
        m @ ("plain" | "itemset" | "timed") => Ok(m),
        other => Err(err(format!("unknown mode '{other}' (plain|itemset|timed)"))),
    }
}

pub(crate) fn read_text(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("db")?;
    std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
}

/// "Did you mean" over the subcommand names: an unambiguous prefix wins
/// (`ver` → `verify`), otherwise the closest name within edit distance 2
/// (`hidee` → `hide`). Prefixes are checked first because short typos sit
/// within distance 2 of several commands at once.
fn unknown_command_error(command: &str) -> CliError {
    let names = || {
        SPECS
            .iter()
            .map(|s| s.command)
            .chain(std::iter::once("help"))
    };
    let best = names().find(|cand| cand.starts_with(command)).or_else(|| {
        names()
            .map(|cand| (levenshtein(command, cand), cand))
            .min()
            .filter(|&(d, _)| d <= 2)
            .map(|(_, cand)| cand)
    });
    match best {
        Some(cand) => err(format!(
            "unknown command '{command}' (did you mean '{cand}'?); try 'seqhide help'"
        )),
        None => err(format!("unknown command '{command}'; try 'seqhide help'")),
    }
}

/// Runs the CLI on `args` (without the program name), returning stdout
/// text or an error message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(HELP.to_string());
    };
    let command = command.as_str();
    if matches!(command, "help" | "--help" | "-h") {
        return Ok(HELP.to_string());
    }
    if matches!(command, "--version" | "-V" | "version") {
        return Ok(format!("seqhide {}\n", env!("CARGO_PKG_VERSION")));
    }
    let Some(spec) = FlagSpec::for_command(command) else {
        return Err(unknown_command_error(command));
    };
    let flags = Flags::parse(&args[1..], spec)?;
    if flags.has("progress") && !obs::is_enabled() {
        eprintln!("[seqhide] --progress: instrumentation compiled out (obs feature off)");
    }
    obs::progress::enable(flags.has("progress"));
    let before = obs::snapshot();
    let result = match command {
        "stats" => stats::cmd_stats(&flags),
        "mine" => mine::cmd_mine(&flags),
        "hide" => hide::cmd_hide(&flags),
        "verify" => verify::cmd_verify(&flags),
        "serve" => serve::cmd_serve(&flags),
        "loadgen" => loadgen::cmd_loadgen(&flags),
        "attack" => attack::cmd_attack(&flags),
        "gen" => gen::cmd_gen(&flags),
        _ => unreachable!("spec table covers every dispatched command"),
    };
    obs::progress::enable(false);
    match result {
        Ok(mut out) => {
            if let Some(path) = flags.one("metrics-out") {
                let metrics = obs::snapshot().diff(&before);
                std::fs::write(path, metrics.to_json())
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                out.push_str(&format!("wrote metrics to {path}\n"));
            }
            Ok(out)
        }
        Err(e) => {
            // A failed run still spent the work the telemetry measured;
            // dropping the snapshot would hide exactly the runs one wants
            // to diagnose. Best-effort write with the error attached — the
            // original error always propagates.
            if let Some(path) = flags.one("metrics-out") {
                let metrics = obs::snapshot().diff(&before);
                let _ = std::fs::write(path, metrics.to_json_with_error(&e.0));
            }
            Err(e)
        }
    }
}
