//! `seqhide attack` — the §7.3 adversary made concrete: bigram
//! mark-inference and pattern re-support measurement on a release.

use seqhide_match::SensitiveSet;
use seqhide_types::{Sequence, SequenceDb};

use super::flags::Flags;
use super::{err, CliError};

pub(crate) fn cmd_attack(flags: &Flags) -> Result<String, CliError> {
    use seqhide_core::attack::{evaluate_mark_inference, reconstruction_resupport, BigramModel};
    let read = |flag: &str| -> Result<String, CliError> {
        let path = flags.required(flag)?;
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))
    };
    // Parse both against ONE alphabet so symbol ids line up.
    let mut original = SequenceDb::parse(&read("original")?);
    let released_text = read("released")?;
    let released = {
        let mut db = SequenceDb::new(original.alphabet().clone());
        for line in released_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            let seq = Sequence::parse(line, db.alphabet_mut());
            db.push(seq);
        }
        // keep the (possibly grown) alphabet consistent on both sides
        *original.alphabet_mut() = db.alphabet().clone();
        db
    };
    if original.len() != released.len() {
        return Err(err(format!(
            "databases do not align: {} vs {} sequences",
            original.len(),
            released.len()
        )));
    }
    let model = match flags.one("train") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            let mut train = SequenceDb::new(original.alphabet().clone());
            for line in text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
            {
                let seq = Sequence::parse(line, train.alphabet_mut());
                train.push(seq);
            }
            *original.alphabet_mut() = train.alphabet().clone();
            BigramModel::train(&train)
        }
        None => BigramModel::train(&released),
    };
    let inf = evaluate_mark_inference(&original, &released, &model);
    let mut out = format!(
        "mark-inference: {} marked slots — top-1 {} ({:.0}%), top-5 {} ({:.0}%), MRR {:.3}\n",
        inf.positions,
        inf.top1,
        if inf.positions > 0 {
            100.0 * inf.top1 as f64 / inf.positions as f64
        } else {
            0.0
        },
        inf.top5,
        if inf.positions > 0 {
            100.0 * inf.top5 as f64 / inf.positions as f64
        } else {
            0.0
        },
        inf.mrr,
    );
    let patterns = flags.all("pattern");
    if !patterns.is_empty() {
        let mut db_for_patterns = original.clone();
        let sh = SensitiveSet::new(
            patterns
                .iter()
                .map(|text| Sequence::parse(text, db_for_patterns.alphabet_mut()))
                .collect(),
        );
        let res = reconstruction_resupport(&db_for_patterns, &released, &sh, &model);
        out.push_str(&format!(
            "pattern re-support: original {} → release {} → reconstruction {}\n",
            res.original_support, res.released_support, res.reconstructed_support
        ));
        if res.reconstructed_support > res.released_support {
            out.push_str(
                "WARNING: the adversary resurrects hidden support; consider --post delete/replace\n",
            );
        }
    }
    Ok(out)
}
