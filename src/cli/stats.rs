//! `seqhide stats` — summarise a sequence database in any of the three
//! line formats.

use super::flags::Flags;
use super::{err, load_db, mode, read_text, CliError};

pub(crate) fn cmd_stats(flags: &Flags) -> Result<String, CliError> {
    match mode(flags)? {
        "itemset" => {
            let (alphabet, db) = seqhide_data::io::parse_itemset_db(&read_text(flags)?);
            let elements: usize = db.iter().map(seqhide_types::ItemsetSequence::len).sum();
            let items: usize = db
                .iter()
                .flat_map(|t| t.elements().iter())
                .map(seqhide_types::Itemset::live_len)
                .sum();
            let marks: usize = db
                .iter()
                .map(seqhide_types::ItemsetSequence::mark_count)
                .sum();
            Ok(format!(
                "sequences:      {}\nelements total: {elements}\nitems total:    {items}\nalphabet |Σ|:   {}\nmarks (Δ):      {marks}\n",
                db.len(),
                alphabet.len()
            ))
        }
        "timed" => {
            let (alphabet, db) = seqhide_data::io::parse_timed_db(&read_text(flags)?)
                .map_err(|e| err(e.to_string()))?;
            let events: usize = db.iter().map(seqhide_types::TimedSequence::len).sum();
            let marks: usize = db
                .iter()
                .map(seqhide_types::TimedSequence::mark_count)
                .sum();
            Ok(format!(
                "sequences:      {}\nevents total:   {events}\nalphabet |Σ|:   {}\nmarks (Δ):      {marks}\n",
                db.len(),
                alphabet.len()
            ))
        }
        _ => {
            let db = load_db(flags)?;
            let s = db.stats();
            Ok(format!(
                "sequences:      {}\nsymbols total:  {}\navg length:     {:.2}\nmax length:     {}\nalphabet |Σ|:   {}\nmarks (Δ):      {}\n",
                s.len, s.total_symbols, s.avg_len, s.max_len, s.alphabet_len, s.marks
            ))
        }
    }
}
