//! The `seqhide` binary: a thin wrapper over [`seqhide::cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match seqhide::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
