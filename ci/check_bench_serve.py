#!/usr/bin/env python3
"""Sanity checks for the CI serve-load-smoke job.

Usage: check_bench_serve.py BENCH_SERVE_JSON [PROM_FILE]

Asserts BENCH_serve.json (written by `seqhide loadgen`) carries the
named fields with sane values: some traffic was served, the shed rate
is a fraction, the latency quantiles are ordered, and the accounting
adds up. With PROM_FILE (a saved `GET /metrics` scrape body), also
runs a minimal Prometheus text-format check over every line.
"""
import json
import sys


def check_bench(path):
    with open(path) as fh:
        bench = json.load(fh)
    assert bench["bench"] == "serve", bench
    for key in (
        "clients",
        "duration_secs",
        "requests",
        "ok",
        "overloaded",
        "errors",
        "throughput_rps",
        "shed_rate",
        "drain_ms",
        "latency_ns",
        "mix",
    ):
        assert key in bench, "missing %s in %s" % (key, path)
    assert bench["requests"] > 0, "loadgen sent no requests"
    assert (
        bench["requests"] == bench["ok"] + bench["overloaded"] + bench["errors"]
    ), "request accounting does not add up: %s" % bench
    assert bench["errors"] == 0, "loadgen saw error responses: %s" % bench
    assert 0.0 <= bench["shed_rate"] <= 1.0, bench["shed_rate"]
    assert bench["throughput_rps"] > 0, bench["throughput_rps"]
    assert bench["drain_ms"] >= 0, bench["drain_ms"]
    lat = bench["latency_ns"]
    for key in ("count", "mean", "p50", "p95", "p99", "max"):
        assert key in lat, "missing latency_ns.%s" % key
    assert lat["count"] == bench["requests"], lat
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"], lat
    assert lat["p50"] > 0, lat
    sent = sum(t["sent"] for t in bench["mix"])
    assert sent == bench["requests"], "mix counts disagree with total"
    print(
        "BENCH_serve.json OK: %d requests, %.1f req/s, p50 %dus p99 %dus, "
        "shed rate %.4f, drain %dms"
        % (
            bench["requests"],
            bench["throughput_rps"],
            lat["p50"] // 1000,
            lat["p99"] // 1000,
            bench["shed_rate"],
            bench["drain_ms"],
        )
    )


def check_prometheus(path):
    """Minimal line-format check: comments are HELP/TYPE, samples are
    `name[{labels}] value` with a float value and a seqhide_ prefix."""
    samples = 0
    with open(path) as fh:
        for line in fh.read().splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
                continue
            series, _, value = line.rpartition(" ")
            float(value)  # raises on malformed samples
            name = series.split("{", 1)[0]
            assert name.startswith("seqhide_"), line
            assert all(
                c.isalnum() or c in "_:" for c in name
            ), "bad metric name: %s" % line
            samples += 1
    assert samples > 0, "scrape body has no samples"
    print("Prometheus scrape OK: %d samples" % samples)


def main():
    check_bench(sys.argv[1])
    if len(sys.argv) > 2:
        check_prometheus(sys.argv[2])


if __name__ == "__main__":
    main()
