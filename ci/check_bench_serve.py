#!/usr/bin/env python3
"""Sanity checks for the CI serve-load-smoke and fairness-smoke jobs.

Usage: check_bench_serve.py BENCH_SERVE_JSON [PROM_FILE]
       check_bench_serve.py fairness CONTENDED_JSON SOLO_JSON

Default mode asserts BENCH_serve.json (written by `seqhide loadgen`)
carries the named fields with sane values: some traffic was served, the
shed rate is a fraction, the latency quantiles are ordered, and the
accounting adds up — including the per-tenant rows and Jain fairness
index a `--tenants` run records. With PROM_FILE (a saved `GET /metrics`
scrape body), also runs a minimal Prometheus text-format check over
every line.

Fairness mode compares a contended 1-hog run (tenant "t0" is the hog)
against a hog-free solo baseline over the same light tenants and
asserts the admission-control contract: every light tenant's p99 stays
within 3x its solo p99, the hog absorbed every shed (light tenants shed
nothing), and the Jain index over the equal-weight lights is >= 0.9.
"""
import json
import sys

HOG = "t0"  # loadgen's tenant-0 token; hog traffic lands here
P99_SLACK = 3.0
JAIN_FLOOR = 0.9


def check_bench(path):
    with open(path) as fh:
        bench = json.load(fh)
    assert bench["bench"] == "serve", bench
    for key in (
        "clients",
        "duration_secs",
        "requests",
        "ok",
        "overloaded",
        "errors",
        "throughput_rps",
        "shed_rate",
        "drain_ms",
        "latency_ns",
        "mix",
    ):
        assert key in bench, "missing %s in %s" % (key, path)
    assert bench["requests"] > 0, "loadgen sent no requests"
    tenants = bench.get("tenants", [])
    quota_sheds = sum(t["quota_exceeded"] for t in tenants)
    assert (
        bench["requests"]
        == bench["ok"] + bench["overloaded"] + quota_sheds + bench["errors"]
    ), "request accounting does not add up: %s" % bench
    assert bench["errors"] == 0, "loadgen saw error responses: %s" % bench
    if tenants:
        check_tenants(bench, tenants)
    else:
        assert "jain_fairness" not in bench, (
            "jain_fairness without a tenants section: %s" % bench
        )
    assert 0.0 <= bench["shed_rate"] <= 1.0, bench["shed_rate"]
    assert bench["throughput_rps"] > 0, bench["throughput_rps"]
    assert bench["drain_ms"] >= 0, bench["drain_ms"]
    lat = bench["latency_ns"]
    for key in ("count", "mean", "p50", "p95", "p99", "max"):
        assert key in lat, "missing latency_ns.%s" % key
    assert lat["count"] == bench["requests"], lat
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"], lat
    assert lat["p50"] > 0, lat
    sent = sum(t["sent"] for t in bench["mix"])
    assert sent == bench["requests"], "mix counts disagree with total"
    print(
        "BENCH_serve.json OK: %d requests, %.1f req/s, p50 %dus p99 %dus, "
        "shed rate %.4f, drain %dms"
        % (
            bench["requests"],
            bench["throughput_rps"],
            lat["p50"] // 1000,
            lat["p99"] // 1000,
            bench["shed_rate"],
            bench["drain_ms"],
        )
    )


def check_tenants(bench, tenants):
    """Per-tenant rows of a `--tenants` run: complete fields, per-row
    accounting, ordered quantiles, and totals that match the globals."""
    for row in tenants:
        for key in (
            "tenant",
            "clients",
            "requests",
            "ok",
            "overloaded",
            "quota_exceeded",
            "p50_ns",
            "p99_ns",
        ):
            assert key in row, "missing tenants[].%s: %s" % (key, row)
        assert (
            row["requests"]
            >= row["ok"] + row["overloaded"] + row["quota_exceeded"]
        ), "tenant accounting does not add up: %s" % row
        if row["requests"] > 0:
            assert row["p50_ns"] <= row["p99_ns"], row
    tokens = [t["tenant"] for t in tenants]
    assert len(tokens) == len(set(tokens)), "duplicate tenant rows: %s" % tokens
    assert sum(t["clients"] for t in tenants) == bench["clients"], tenants
    assert sum(t["requests"] for t in tenants) == bench["requests"], tenants
    assert 0.0 <= bench["jain_fairness"] <= 1.0, bench["jain_fairness"]


def check_fairness(contended_path, solo_path):
    """1-hog-vs-lights contract: lights keep their solo latency (within
    P99_SLACK), the hog absorbs every shed, Jain >= JAIN_FLOOR."""
    with open(contended_path) as fh:
        contended = json.load(fh)
    with open(solo_path) as fh:
        solo = json.load(fh)
    rows = {t["tenant"]: t for t in contended.get("tenants", [])}
    solo_rows = {t["tenant"]: t for t in solo.get("tenants", [])}
    assert rows, "%s has no tenants section" % contended_path
    assert HOG in rows, "no hog row %r in %s" % (HOG, sorted(rows))
    hog = rows[HOG]
    assert hog["requests"] > 0, "the hog sent no traffic: %s" % hog
    hog_sheds = hog["overloaded"] + hog["quota_exceeded"]
    assert hog_sheds > 0, "the hog was never shed: %s" % hog
    lights = {tok: row for tok, row in rows.items() if tok != HOG}
    assert lights, "no light tenants in %s" % contended_path
    for tok, row in sorted(lights.items()):
        assert row["requests"] > 0, "light %s sent no traffic: %s" % (tok, row)
        assert row["overloaded"] == 0 and row["quota_exceeded"] == 0, (
            "light tenant %s was shed: %s" % (tok, row)
        )
        base = solo_rows.get(tok)
        assert base and base["requests"] > 0, (
            "no solo baseline traffic for %s in %s" % (tok, solo_path)
        )
        assert row["p99_ns"] <= P99_SLACK * base["p99_ns"], (
            "light %s p99 %dns exceeds %.1fx solo p99 %dns"
            % (tok, row["p99_ns"], P99_SLACK, base["p99_ns"])
        )
    jain = contended["jain_fairness"]
    assert jain >= JAIN_FLOOR, "Jain fairness %.4f below %.1f" % (
        jain,
        JAIN_FLOOR,
    )
    print(
        "fairness OK: %d light tenant(s) within %.0fx solo p99, hog shed "
        "%d time(s) (lights 0), Jain %.4f"
        % (len(lights), P99_SLACK, hog_sheds, jain)
    )


def check_prometheus(path):
    """Minimal line-format check: comments are HELP/TYPE, samples are
    `name[{labels}] value` with a float value and a seqhide_ prefix."""
    samples = 0
    with open(path) as fh:
        for line in fh.read().splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
                continue
            series, _, value = line.rpartition(" ")
            float(value)  # raises on malformed samples
            name = series.split("{", 1)[0]
            assert name.startswith("seqhide_"), line
            assert all(
                c.isalnum() or c in "_:" for c in name
            ), "bad metric name: %s" % line
            samples += 1
    assert samples > 0, "scrape body has no samples"
    print("Prometheus scrape OK: %d samples" % samples)


def main():
    if sys.argv[1] == "fairness":
        contended, solo = sys.argv[2], sys.argv[3]
        check_bench(contended)
        check_bench(solo)
        check_fairness(contended, solo)
        return
    check_bench(sys.argv[1])
    if len(sys.argv) > 2:
        check_prometheus(sys.argv[2])


if __name__ == "__main__":
    main()
