#!/usr/bin/env python3
"""Concurrent smoke client for the CI serve-smoke job.

Usage: serve_smoke.py ADDR_FILE DB_FILE EXPECT_HH_SEED0 EXPECT_RR_SEED7 \
                      EXPECT_STRING_SUB [PHASE] [TENANT_TOKEN]

Hammers a running `seqhide serve` instance with concurrent sanitize
requests and asserts every answered release is byte-identical to the CLI
ground-truth files — both shipping the database inline and referencing
it as an interned dataset — that the `op` wire field round-trips
(string-mode substitute parity plus the mark-only rejection), that
health and metrics stay responsive while the pool is loaded, and that a
shutdown request is acknowledged as draining.

PHASE is "initial" (default) or "restart". The initial phase loads the
database once as dataset "smoke"; the restart phase expects a fresh
server over the same --data-dir to have re-attached it from disk
(origin "reattach") without any reload. The caller owns process-level
checks (exit status, summary line, store-file presence).

TENANT_TOKEN, when given, is stamped as the `tenant` field on every
request. Against a default-mode server (no --tenants) the token is
accepted and ignored — the responses must stay byte-identical — and
against a --tenants config it must resolve, so the same script
exercises both the permissive single-tenant default and an explicit
tenant end-to-end.
"""
import json
import socket
import sys
import threading

CLIENTS = 8
PATTERN = "X2Y7 X3Y7"
PSI = 50
DATASET = "smoke"
TENANT = None  # optional token stamped on every request (argv[7])


def rpc(addr, *requests):
    """One connection, N pipelined request lines, N response objects."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=60) as sock:
        f = sock.makefile("rw", encoding="utf-8", newline="\n")
        for req in requests:
            if TENANT is not None:
                req = dict(req, tenant=TENANT)
            f.write(json.dumps(req) + "\n")
        f.flush()
        return [json.loads(f.readline()) for _ in requests]


def main():
    global TENANT
    addr_file, db_file, expect_hh, expect_rr, expect_string = sys.argv[1:6]
    phase = sys.argv[6] if len(sys.argv) > 6 else "initial"
    assert phase in ("initial", "restart"), phase
    if len(sys.argv) > 7:
        TENANT = sys.argv[7]
    with open(addr_file) as fh:
        # first line is the wire address; a second line (the Prometheus
        # scrape address) appears when --metrics-addr is set
        addr = fh.read().splitlines()[0].strip()
    with open(db_file) as fh:
        db = fh.read()
    expected = {}
    with open(expect_hh) as fh:
        expected[("hh", 0)] = fh.read()
    with open(expect_rr) as fh:
        expected[("rr", 7)] = fh.read()
    with open(expect_string) as fh:
        expected_string = fh.read()

    # Dataset registry: the initial phase interns the database once; the
    # restart phase finds it re-attached from --data-dir instead. Either
    # way, clients below reference it by name and a duplicate load is
    # refused (the registry never silently replaces).
    if phase == "initial":
        (resp,) = rpc(addr, {"type": "load", "name": DATASET, "db": db})
        assert resp.get("status") == "ok", resp
        assert resp["bytes"] == len(db.encode("utf-8")), resp
    (resp,) = rpc(addr, {"type": "datasets"})
    assert resp.get("status") == "ok", resp
    rows = {row["name"]: row for row in resp["datasets"]}
    assert DATASET in rows, resp
    want_origin = "inline" if phase == "initial" else "reattach"
    assert rows[DATASET]["origin"] == want_origin, rows[DATASET]
    (resp,) = rpc(addr, {"type": "load", "name": DATASET, "db": db})
    assert resp.get("status") == "error", resp
    assert "already loaded" in resp.get("error", ""), resp

    failures = []
    ok_count = [0]

    def client(tid):
        try:
            for (algo, seed), release in sorted(expected.items()):
                base = {
                    "type": "sanitize",
                    "patterns": [PATTERN],
                    "psi": PSI,
                    "algorithm": algo,
                    "seed": seed,
                }
                for transport, db_field in (
                    ("inline", {"db": db}),
                    ("dataset", {"dataset": DATASET}),
                ):
                    req = dict(base, **db_field)
                    req["id"] = "%d-%s-%d-%s" % (tid, algo, seed, transport)
                    (resp,) = rpc(addr, req)
                    if resp.get("status") == "overloaded":
                        # A legitimate shed under the deliberately small
                        # CI queue; parity is asserted on every answered
                        # request.
                        continue
                    assert resp.get("status") == "ok", resp
                    assert resp["release"] == release, (
                        "client %d: %s/seed %d via %s release diverged "
                        "from the CLI" % (tid, algo, seed, transport)
                    )
                    ok_count[0] += 1
        except Exception as exc:  # collected for the main thread
            failures.append("client %d: %r" % (tid, exc))

    threads = [
        threading.Thread(target=client, args=(t,)) for t in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    # Health is answered inline on the connection thread — it must come
    # back promptly even while every worker is busy.
    (health,) = rpc(addr, {"type": "health"})
    assert health["status"] == "ok" and health["workers"] >= 1, health
    for t in threads:
        t.join()
    if failures:
        sys.exit("\n".join(failures))
    assert ok_count[0] > 0, "every request was shed; nothing verified"

    # The DistortOp wire field: a string-mode substitute release matches
    # the CLI's `--domain string --op substitute` run byte for byte, and
    # an edit op on a mark-only mode is shed with a pointed error.
    (resp,) = rpc(
        addr,
        {
            "id": "string-sub",
            "type": "sanitize",
            "db": db,
            "mode": "string",
            "patterns": [PATTERN],
            "psi": PSI,
            "op": "substitute",
        },
    )
    assert resp.get("status") == "ok", resp
    assert resp["release"] == expected_string, (
        "string-mode substitute release diverged from the CLI"
    )
    (resp,) = rpc(
        addr,
        {
            "id": "op-reject",
            "type": "sanitize",
            "db": db,
            "patterns": [PATTERN],
            "psi": PSI,
            "op": "delete",
        },
    )
    assert resp.get("status") == "error", resp
    assert '"mode":"string"' in resp.get("error", ""), resp

    (metrics,) = rpc(addr, {"type": "metrics"})
    assert metrics["status"] == "ok", metrics
    snap = metrics["metrics"]
    assert "schema_version" in snap, snap
    if snap.get("obs_enabled"):
        # 4 sanitize requests per client plus the health probe above.
        assert snap["counters"]["serve_requests"] >= 2 * CLIENTS, snap

    (bye,) = rpc(addr, {"type": "shutdown"})
    assert bye["status"] == "ok" and bye["draining"] is True, bye
    print(
        "serve smoke (%s%s): %d/%d releases byte-identical to the CLI "
        "(inline and dataset '%s'); string-mode op parity, health, "
        "metrics and shutdown all OK"
        % (
            phase,
            ", tenant %r" % TENANT if TENANT else "",
            ok_count[0],
            4 * CLIENTS,
            DATASET,
        )
    )


if __name__ == "__main__":
    main()
