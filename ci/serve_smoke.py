#!/usr/bin/env python3
"""Concurrent smoke client for the CI serve-smoke job.

Usage: serve_smoke.py ADDR_FILE DB_FILE EXPECT_HH_SEED0 EXPECT_RR_SEED7 \
                      EXPECT_STRING_SUB

Hammers a running `seqhide serve` instance with concurrent sanitize
requests and asserts every answered release is byte-identical to the CLI
ground-truth files, that the `op` wire field round-trips (string-mode
substitute parity plus the mark-only rejection), that health and metrics
stay responsive while the pool is loaded, and that a shutdown request is
acknowledged as draining. The caller owns process-level checks (exit
status, summary line).
"""
import json
import socket
import sys
import threading

CLIENTS = 8
PATTERN = "X2Y7 X3Y7"
PSI = 50


def rpc(addr, *requests):
    """One connection, N pipelined request lines, N response objects."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=60) as sock:
        f = sock.makefile("rw", encoding="utf-8", newline="\n")
        for req in requests:
            f.write(json.dumps(req) + "\n")
        f.flush()
        return [json.loads(f.readline()) for _ in requests]


def main():
    addr_file, db_file, expect_hh, expect_rr, expect_string = sys.argv[1:6]
    with open(addr_file) as fh:
        # first line is the wire address; a second line (the Prometheus
        # scrape address) appears when --metrics-addr is set
        addr = fh.read().splitlines()[0].strip()
    with open(db_file) as fh:
        db = fh.read()
    expected = {}
    with open(expect_hh) as fh:
        expected[("hh", 0)] = fh.read()
    with open(expect_rr) as fh:
        expected[("rr", 7)] = fh.read()
    with open(expect_string) as fh:
        expected_string = fh.read()

    failures = []
    ok_count = [0]

    def client(tid):
        try:
            for (algo, seed), release in sorted(expected.items()):
                req = {
                    "id": "%d-%s-%d" % (tid, algo, seed),
                    "type": "sanitize",
                    "db": db,
                    "patterns": [PATTERN],
                    "psi": PSI,
                    "algorithm": algo,
                    "seed": seed,
                }
                (resp,) = rpc(addr, req)
                if resp.get("status") == "overloaded":
                    # A legitimate shed under the deliberately small CI
                    # queue; parity is asserted on every answered request.
                    continue
                assert resp.get("status") == "ok", resp
                assert resp["release"] == release, (
                    "client %d: %s/seed %d release diverged from the CLI"
                    % (tid, algo, seed)
                )
                ok_count[0] += 1
        except Exception as exc:  # collected for the main thread
            failures.append("client %d: %r" % (tid, exc))

    threads = [
        threading.Thread(target=client, args=(t,)) for t in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    # Health is answered inline on the connection thread — it must come
    # back promptly even while every worker is busy.
    (health,) = rpc(addr, {"type": "health"})
    assert health["status"] == "ok" and health["workers"] >= 1, health
    for t in threads:
        t.join()
    if failures:
        sys.exit("\n".join(failures))
    assert ok_count[0] > 0, "every request was shed; nothing verified"

    # The DistortOp wire field: a string-mode substitute release matches
    # the CLI's `--domain string --op substitute` run byte for byte, and
    # an edit op on a mark-only mode is shed with a pointed error.
    (resp,) = rpc(
        addr,
        {
            "id": "string-sub",
            "type": "sanitize",
            "db": db,
            "mode": "string",
            "patterns": [PATTERN],
            "psi": PSI,
            "op": "substitute",
        },
    )
    assert resp.get("status") == "ok", resp
    assert resp["release"] == expected_string, (
        "string-mode substitute release diverged from the CLI"
    )
    (resp,) = rpc(
        addr,
        {
            "id": "op-reject",
            "type": "sanitize",
            "db": db,
            "patterns": [PATTERN],
            "psi": PSI,
            "op": "delete",
        },
    )
    assert resp.get("status") == "error", resp
    assert '"mode":"string"' in resp.get("error", ""), resp

    (metrics,) = rpc(addr, {"type": "metrics"})
    assert metrics["status"] == "ok", metrics
    snap = metrics["metrics"]
    assert "schema_version" in snap, snap
    if snap.get("obs_enabled"):
        # 2 sanitize requests per client plus the health probe above.
        assert snap["counters"]["serve_requests"] >= 2 * CLIENTS, snap

    (bye,) = rpc(addr, {"type": "shutdown"})
    assert bye["status"] == "ok" and bye["draining"] is True, bye
    print(
        "serve smoke: %d/%d releases byte-identical to the CLI; "
        "string-mode op parity, health, metrics and shutdown all OK"
        % (ok_count[0], 2 * CLIENTS)
    )


if __name__ == "__main__":
    main()
