#!/usr/bin/env python3
"""Scripted delta-stream client for the CI delta-smoke job.

Usage: delta_smoke.py ADDR_FILE DB_FILE FINAL_DB_OUT RELEASE_OUT \
                      [TENANT_TOKEN]

Loads DB_FILE onto a running `seqhide serve` instance as dataset
"churn", then applies a scripted stream of `delta` batches — appends
drawn from the database's own lines plus removals spread over the
current ordinals — mirroring every edit client-side. Asserts along the
way:

 * every delta response is ok and the dataset version climbs by
   exactly one per applied batch;
 * the reported sequence count always matches the client-side mirror;
 * an out-of-range removal is refused with a pointed error and does
   not move the version;
 * the `datasets` listing reports the final version and a non-zero
   last_modified stamp.

The final batch asks for the post-delta release. The mirror database is
written to FINAL_DB_OUT and the release to RELEASE_OUT; the caller
re-sanitizes FINAL_DB_OUT from scratch with the CLI and byte-compares —
the delta path must be nothing but a faster route to the same release.

TENANT_TOKEN, when given, rides as the `tenant` field on every request:
against a --tenants server the load makes that tenant the dataset's
owner and every delta exercises the ownership check; against a
default-mode server it is accepted and ignored.
"""
import json
import socket
import sys

PATTERN = "X2Y7 X3Y7"
PSI = 50
DATASET = "churn"
ROUNDS = 6
TENANT = None  # optional token stamped on every request (argv[5])


def rpc(addr, *requests):
    """One connection, N pipelined request lines, N response objects."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=60) as sock:
        f = sock.makefile("rw", encoding="utf-8", newline="\n")
        for req in requests:
            if TENANT is not None:
                req = dict(req, tenant=TENANT)
            f.write(json.dumps(req) + "\n")
        f.flush()
        return [json.loads(f.readline()) for _ in requests]


def delta(addr, add, remove, want_release=False):
    (resp,) = rpc(
        addr,
        {
            "type": "delta",
            "dataset": DATASET,
            "add": add,
            "remove": remove,
            "patterns": [PATTERN],
            "psi": PSI,
            "release": want_release,
        },
    )
    return resp


def main():
    global TENANT
    addr_file, db_file, final_out, release_out = sys.argv[1:5]
    if len(sys.argv) > 5:
        TENANT = sys.argv[5]
    with open(addr_file) as fh:
        addr = fh.read().splitlines()[0].strip()
    with open(db_file) as fh:
        mirror = [l for l in fh.read().splitlines() if l.strip()]
    assert len(mirror) >= ROUNDS * 4, "database too small for the script"

    (resp,) = rpc(
        addr, {"type": "load", "name": DATASET, "db": "\n".join(mirror) + "\n"}
    )
    assert resp.get("status") == "ok", resp

    version = 1
    for r in range(ROUNDS):
        # appends recycle the database's own lines (guaranteed parseable
        # in the dataset's alphabet-compatible format) ...
        add = [mirror[(r * 7 + k) % len(mirror)] for k in range(3)]
        # ... removals spread over the current ordinal range, distinct
        remove = sorted({(r + 1) * k % len(mirror) for k in (1, 5, 11)})
        last = r == ROUNDS - 1
        resp = delta(addr, add, remove, want_release=last)
        assert resp.get("status") == "ok", resp
        version += 1
        assert resp["version"] == version, (resp["version"], version)
        mirror = [l for i, l in enumerate(mirror) if i not in remove] + add
        assert resp["sequences"] == len(mirror), (resp["sequences"], len(mirror))
        assert resp["added"] == len(add) and resp["removed"] == len(remove), resp
        if last:
            release = resp["release"]

    # a refused batch moves nothing
    resp = delta(addr, [], [len(mirror) + 7])
    assert resp.get("status") == "error", resp
    assert str(len(mirror) + 7) in resp.get("error", ""), resp
    (resp,) = rpc(addr, {"type": "datasets"})
    rows = {row["name"]: row for row in resp["datasets"]}
    assert rows[DATASET]["version"] == version, rows[DATASET]
    assert rows[DATASET]["last_modified"] > 0, rows[DATASET]
    if "owner" in rows[DATASET]:
        # multi-tenant server: the loading tenant owns the dataset
        assert rows[DATASET]["owner"], rows[DATASET]

    with open(final_out, "w") as fh:
        fh.write("\n".join(mirror) + "\n")
    with open(release_out, "w") as fh:
        fh.write(release)

    (bye,) = rpc(addr, {"type": "shutdown"})
    assert bye["status"] == "ok" and bye["draining"] is True, bye
    print(
        "delta smoke%s: %d batches applied, version 1 -> %d, %d sequences; "
        "release captured for from-scratch comparison"
        % (" (tenant %r)" % TENANT if TENANT else "", ROUNDS, version, len(mirror))
    )


if __name__ == "__main__":
    main()
